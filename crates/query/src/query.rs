//! λ-dimensional range queries (paper §3.1).
//!
//! A query is a conjunction of interval predicates over distinct attributes:
//! `q = (a_{t1}, [l1, r1]) ∧ … ∧ (a_{tλ}, [lλ, rλ])`, asking for the
//! fraction of users whose record satisfies every predicate. Intervals are
//! inclusive and 0-based.

use privmdr_data::Dataset;

/// One interval predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Attribute index.
    pub attr: usize,
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

/// Errors from invalid query construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A query needs at least one predicate.
    Empty,
    /// Predicates must reference distinct attributes.
    DuplicateAttr(usize),
    /// An interval is inverted or out of the domain.
    BadInterval {
        attr: usize,
        lo: usize,
        hi: usize,
        domain: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query needs at least one predicate"),
            QueryError::DuplicateAttr(a) => write!(f, "attribute {a} appears twice"),
            QueryError::BadInterval {
                attr,
                lo,
                hi,
                domain,
            } => {
                write!(
                    f,
                    "attribute {attr}: interval [{lo}, {hi}] invalid for domain {domain}"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive multi-dimensional range query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeQuery {
    /// Predicates sorted by attribute index.
    preds: Vec<Predicate>,
}

impl RangeQuery {
    /// Builds a query over the given predicates, validating against domain
    /// size `c`. Predicates are sorted by attribute.
    pub fn new(mut preds: Vec<Predicate>, c: usize) -> Result<Self, QueryError> {
        if preds.is_empty() {
            return Err(QueryError::Empty);
        }
        preds.sort_by_key(|p| p.attr);
        for w in preds.windows(2) {
            if w[0].attr == w[1].attr {
                return Err(QueryError::DuplicateAttr(w[0].attr));
            }
        }
        for p in &preds {
            if p.lo > p.hi || p.hi >= c {
                return Err(QueryError::BadInterval {
                    attr: p.attr,
                    lo: p.lo,
                    hi: p.hi,
                    domain: c,
                });
            }
        }
        Ok(RangeQuery { preds })
    }

    /// Convenience constructor from `(attr, lo, hi)` triples.
    pub fn from_triples(triples: &[(usize, usize, usize)], c: usize) -> Result<Self, QueryError> {
        RangeQuery::new(
            triples
                .iter()
                .map(|&(attr, lo, hi)| Predicate { attr, lo, hi })
                .collect(),
            c,
        )
    }

    /// The predicates, sorted by attribute.
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// Query dimension λ.
    pub fn lambda(&self) -> usize {
        self.preds.len()
    }

    /// The queried attributes, ascending.
    pub fn attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.preds.iter().map(|p| p.attr)
    }

    /// The interval for `attr`, or the full domain `[0, c-1]` if the query
    /// does not restrict it (§3.3's query expansion).
    pub fn interval_or_full(&self, attr: usize, c: usize) -> (usize, usize) {
        self.preds
            .iter()
            .find(|p| p.attr == attr)
            .map_or((0, c - 1), |p| (p.lo, p.hi))
    }

    /// Appends the query's canonical byte encoding to `out`: for each
    /// predicate in ascending-attribute order (the constructor's invariant),
    /// `attr`, `lo`, `hi` as little-endian `u64` — 24 bytes per predicate,
    /// self-delimiting given the buffer length. Two queries produce the same
    /// bytes iff they are equal, which is what makes the encoding usable as
    /// an answer-cache key: `(a0∈[1,2]) ∧ (a1∈[3,4])` and its reordered
    /// spelling collapse to one entry, and no two distinct queries collide.
    pub fn write_canonical_key(&self, out: &mut Vec<u8>) {
        out.reserve(self.preds.len() * 24);
        for p in &self.preds {
            out.extend_from_slice(&(p.attr as u64).to_le_bytes());
            out.extend_from_slice(&(p.lo as u64).to_le_bytes());
            out.extend_from_slice(&(p.hi as u64).to_le_bytes());
        }
    }

    /// Fraction of the data space the query selects (`∏ len_i / c`).
    pub fn volume(&self, c: usize) -> f64 {
        self.preds
            .iter()
            .map(|p| (p.hi - p.lo + 1) as f64 / c as f64)
            .product()
    }

    /// Whether record `row` satisfies every predicate.
    #[inline]
    pub fn matches(&self, row: &[u16]) -> bool {
        self.preds
            .iter()
            .all(|p| (p.lo..=p.hi).contains(&(row[p.attr] as usize)))
    }

    /// Ground truth: the exact fraction of records matching the query.
    pub fn true_answer(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        for u in 0..ds.len() {
            if self.matches(ds.row(u)) {
                hits += 1;
            }
        }
        hits as f64 / ds.len() as f64
    }
}

impl std::fmt::Display for RangeQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .preds
            .iter()
            .map(|p| format!("a{} in [{}, {}]", p.attr, p.lo, p.hi))
            .collect();
        write!(f, "{}", parts.join(" AND "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        // 4 users, 2 attributes, c = 8.
        Dataset::new(vec![0, 0, 3, 4, 7, 7, 3, 5], 2, 8).unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(RangeQuery::new(vec![], 8), Err(QueryError::Empty)));
        assert!(matches!(
            RangeQuery::from_triples(&[(0, 0, 3), (0, 4, 5)], 8),
            Err(QueryError::DuplicateAttr(0))
        ));
        assert!(matches!(
            RangeQuery::from_triples(&[(0, 5, 3)], 8),
            Err(QueryError::BadInterval { .. })
        ));
        assert!(matches!(
            RangeQuery::from_triples(&[(0, 0, 8)], 8),
            Err(QueryError::BadInterval { .. })
        ));
        assert!(RangeQuery::from_triples(&[(1, 0, 7), (0, 2, 2)], 8).is_ok());
    }

    #[test]
    fn predicates_sorted_and_lambda() {
        let q = RangeQuery::from_triples(&[(3, 0, 1), (1, 2, 4)], 8).unwrap();
        assert_eq!(q.lambda(), 2);
        assert_eq!(q.predicates()[0].attr, 1);
        assert_eq!(q.attrs().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn interval_or_full() {
        let q = RangeQuery::from_triples(&[(1, 2, 4)], 8).unwrap();
        assert_eq!(q.interval_or_full(1, 8), (2, 4));
        assert_eq!(q.interval_or_full(0, 8), (0, 7));
    }

    #[test]
    fn volume() {
        let q = RangeQuery::from_triples(&[(0, 0, 3), (1, 0, 1)], 8).unwrap();
        assert!((q.volume(8) - 0.5 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn true_answer_counts_matches() {
        let ds = tiny_dataset();
        // Users: (0,0), (3,4), (7,7), (3,5).
        let q = RangeQuery::from_triples(&[(0, 3, 3)], 8).unwrap();
        assert!((q.true_answer(&ds) - 0.5).abs() < 1e-12);
        let q = RangeQuery::from_triples(&[(0, 3, 3), (1, 5, 7)], 8).unwrap();
        assert!((q.true_answer(&ds) - 0.25).abs() < 1e-12);
        let q = RangeQuery::from_triples(&[(0, 0, 7), (1, 0, 7)], 8).unwrap();
        assert!((q.true_answer(&ds) - 1.0).abs() < 1e-12);
        let q = RangeQuery::from_triples(&[(0, 1, 2)], 8).unwrap();
        assert_eq!(q.true_answer(&ds), 0.0);
    }

    #[test]
    fn canonical_key_is_order_insensitive_and_injective() {
        let q = RangeQuery::from_triples(&[(2, 1, 5), (0, 3, 4)], 8).unwrap();
        let reordered = RangeQuery::from_triples(&[(0, 3, 4), (2, 1, 5)], 8).unwrap();
        let mut key = Vec::new();
        q.write_canonical_key(&mut key);
        assert_eq!(key.len(), 48);
        let mut key2 = Vec::new();
        reordered.write_canonical_key(&mut key2);
        assert_eq!(key, key2, "predicate spelling order must not matter");
        // Fixed-width fields: the first predicate is (attr=0, lo=3, hi=4).
        assert_eq!(&key[0..8], &0u64.to_le_bytes());
        assert_eq!(&key[8..16], &3u64.to_le_bytes());
        assert_eq!(&key[16..24], &4u64.to_le_bytes());
        // Any differing query yields different bytes.
        for other in [
            RangeQuery::from_triples(&[(2, 1, 5)], 8).unwrap(),
            RangeQuery::from_triples(&[(2, 1, 5), (0, 3, 5)], 8).unwrap(),
            RangeQuery::from_triples(&[(2, 1, 5), (1, 3, 4)], 8).unwrap(),
        ] {
            let mut other_key = Vec::new();
            other.write_canonical_key(&mut other_key);
            assert_ne!(key, other_key, "{other} must not collide with {q}");
        }
        // Appends rather than overwrites, so callers can prefix a version.
        let mut prefixed = vec![0xAB];
        q.write_canonical_key(&mut prefixed);
        assert_eq!(prefixed[0], 0xAB);
        assert_eq!(&prefixed[1..], &key[..]);
    }

    #[test]
    fn display_is_readable() {
        let q = RangeQuery::from_triples(&[(2, 1, 5), (0, 0, 0)], 8).unwrap();
        assert_eq!(q.to_string(), "a0 in [0, 0] AND a2 in [1, 5]");
    }
}
