//! Property tests for dataset generation.

use privmdr_data::DatasetSpec;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    prop_oneof![
        Just(DatasetSpec::Ipums),
        Just(DatasetSpec::Bfive),
        Just(DatasetSpec::Loan),
        Just(DatasetSpec::Acs),
        (0.0f64..1.0).prop_map(|rho| DatasetSpec::Normal { rho }),
        (0.0f64..1.0).prop_map(|rho| DatasetSpec::Laplace { rho }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generator respects the requested shape and domain for any
    /// valid parameters, and is deterministic in its seed.
    #[test]
    fn generators_shape_and_determinism(
        spec in arb_spec(),
        n in 1usize..400,
        d in 2usize..7,
        c_exp in 2u32..8,
        seed in any::<u64>(),
    ) {
        let c = 1usize << c_exp;
        let a = spec.generate(n, d, c, seed);
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a.dims(), d);
        prop_assert_eq!(a.domain(), c);
        for u in 0..n {
            for t in 0..d {
                prop_assert!((a.value(u, t) as usize) < c);
            }
        }
        let b = spec.generate(n, d, c, seed);
        prop_assert_eq!(a, b);
    }

    /// Pair histograms are distributions consistent with gather_pair.
    #[test]
    fn pair_histogram_is_distribution(
        n in 1usize..300,
        seed in any::<u64>(),
    ) {
        let ds = DatasetSpec::Loan.generate(n, 3, 16, seed);
        let h = ds.pair_histogram((0, 2));
        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(h.iter().all(|&x| x >= 0.0));
        // Spot-check one cell against direct counting.
        let users: Vec<u32> = (0..n as u32).collect();
        let pairs = ds.gather_pair((0, 2), &users);
        let (v0, v1) = pairs[0];
        let direct =
            pairs.iter().filter(|&&p| p == (v0, v1)).count() as f64 / n as f64;
        prop_assert!((h[v0 as usize * 16 + v1 as usize] - direct).abs() < 1e-9);
    }
}
