//! Named dataset specifications for the benchmark harness.
//!
//! Every evaluation figure sweeps one or more of these; the enum keeps the
//! naming, default correlation, and generator dispatch in one place.

use crate::dataset::Dataset;
use crate::{real_like, synth};

/// A dataset the paper evaluates on, generatable at any `(n, d, c)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetSpec {
    /// IPUMS-like census stand-in.
    Ipums,
    /// Big-Five-like response-time stand-in (weak correlation).
    Bfive,
    /// Lending-Club-like loan stand-in (Appendix A.7).
    Loan,
    /// ACS-like survey stand-in (Appendix A.7).
    Acs,
    /// Multivariate normal with pairwise covariance `rho` (default 0.8).
    Normal {
        /// Pairwise correlation coefficient.
        rho: f64,
    },
    /// Multivariate Laplace with pairwise covariance `rho` (default 0.8).
    Laplace {
        /// Pairwise correlation coefficient.
        rho: f64,
    },
}

impl DatasetSpec {
    /// The paper's four default evaluation datasets (Figs. 1–5).
    pub fn main_four() -> [DatasetSpec; 4] {
        [
            DatasetSpec::Ipums,
            DatasetSpec::Bfive,
            DatasetSpec::Normal { rho: 0.8 },
            DatasetSpec::Laplace { rho: 0.8 },
        ]
    }

    /// The two synthetic datasets (Figs. 3, 6, 28).
    pub fn synthetic_two() -> [DatasetSpec; 2] {
        [
            DatasetSpec::Normal { rho: 0.8 },
            DatasetSpec::Laplace { rho: 0.8 },
        ]
    }

    /// The Appendix A.7 additional real-like datasets (Figs. 19–21).
    pub fn appendix_two() -> [DatasetSpec; 2] {
        [DatasetSpec::Loan, DatasetSpec::Acs]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            DatasetSpec::Ipums => "Ipums".into(),
            DatasetSpec::Bfive => "Bfive".into(),
            DatasetSpec::Loan => "Loan".into(),
            DatasetSpec::Acs => "Acs".into(),
            DatasetSpec::Normal { rho } => {
                if (rho - 0.8).abs() < 1e-9 {
                    "Normal".into()
                } else {
                    format!("Normal(rho={rho})")
                }
            }
            DatasetSpec::Laplace { rho } => {
                if (rho - 0.8).abs() < 1e-9 {
                    "Laplace".into()
                } else {
                    format!("Laplace(rho={rho})")
                }
            }
        }
    }

    /// Generates the dataset at the given shape, deterministic in `seed`.
    pub fn generate(&self, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
        match *self {
            DatasetSpec::Ipums => real_like::ipums_like(n, d, c, seed),
            DatasetSpec::Bfive => real_like::bfive_like(n, d, c, seed),
            DatasetSpec::Loan => real_like::loan_like(n, d, c, seed),
            DatasetSpec::Acs => real_like::acs_like(n, d, c, seed),
            DatasetSpec::Normal { rho } => synth::normal(n, d, c, rho, seed),
            DatasetSpec::Laplace { rho } => synth::laplace(n, d, c, rho, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_generate_valid_datasets() {
        let specs = [
            DatasetSpec::Ipums,
            DatasetSpec::Bfive,
            DatasetSpec::Loan,
            DatasetSpec::Acs,
            DatasetSpec::Normal { rho: 0.8 },
            DatasetSpec::Laplace { rho: 0.0 },
        ];
        for spec in specs {
            let ds = spec.generate(300, 5, 32, 42);
            assert_eq!(ds.len(), 300);
            assert_eq!(ds.dims(), 5);
            assert_eq!(ds.domain(), 32);
            assert!(!spec.name().is_empty());
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetSpec::Normal { rho: 0.8 }.name(), "Normal");
        assert_eq!(DatasetSpec::Normal { rho: 0.2 }.name(), "Normal(rho=0.2)");
        assert_eq!(DatasetSpec::Ipums.name(), "Ipums");
    }
}
