//! Seeded stand-ins for the paper's four real datasets (§5.1, A.7).
//!
//! The originals (IPUMS census extract, Kaggle Big-Five response times,
//! Lending-Club loans, 2015 ACS) cannot be bundled. The grid/hierarchy
//! mechanisms interact with a dataset only through (a) each attribute's
//! discretized marginal shape — skew, atoms, multi-modality — and (b) the
//! strength of pairwise correlations. Each generator below reproduces the
//! regime the paper attributes to its dataset:
//!
//! | Stand-in | Marginals | Correlation | Paper's observation reproduced |
//! |----------|-----------|-------------|--------------------------------|
//! | `ipums_like` | mixed: bimodal ages, heavy-tailed incomes, spiked hours | moderate (ρ≈0.4) | grids beat baselines; HDG > TDG |
//! | `bfive_like` | log-normal response times | weak (ρ≈0.1) | MSW is competitive (Fig. 1c/d) |
//! | `loan_like`  | heavy right tails + one spiked attribute | strong (ρ≈0.55) | HDG/TDG crossover at λ=2 vs 4 (Fig. 21) |
//! | `acs_like`   | zero-inflated, spiky counts | moderate (ρ≈0.3) | post-processing dominates 0-count queries (Fig. 13) |
//!
//! All use a Gaussian copula: latent equicorrelated normals are pushed
//! through per-attribute quantile transforms, so correlation strength and
//! marginal shape are controlled independently.

use crate::dataset::Dataset;
use crate::normal_cdf;
use privmdr_util::linalg::Matrix;
use privmdr_util::rng::derive_rng;
use privmdr_util::sampling::standard_normal;

/// A per-attribute marginal shape, expressed as a quantile transform
/// `[0,1) -> [0,1)` applied to the copula's uniform coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Marginal {
    /// `u^k`-style right skew (income, loan amounts).
    HeavyRight,
    /// Two modes around 0.25 and 0.75 of the domain (ages in a census).
    Bimodal,
    /// A large atom at one common value plus a uniform background
    /// (hours-worked spikes at 40).
    Spiked,
    /// Log-normal-ish concentration near the low end with a long tail
    /// (response times).
    LogNormalish,
    /// A big atom at zero plus a skewed remainder (ACS count fields).
    ZeroInflated,
}

impl Marginal {
    /// Transforms the copula uniform `u` into the final uniform coordinate
    /// whose equal-width binning produces the desired marginal shape.
    fn transform(self, u: f64) -> f64 {
        match self {
            Marginal::HeavyRight => u.powi(3),
            Marginal::Bimodal => {
                if u < 0.5 {
                    // Mode centered near 0.22 of the domain.
                    0.10 + 0.25 * beta_ish(u * 2.0)
                } else {
                    // Mode centered near 0.78 of the domain.
                    0.65 + 0.25 * beta_ish((u - 0.5) * 2.0)
                }
            }
            Marginal::Spiked => {
                if (0.45..0.75).contains(&u) {
                    // 30% of users share one value (5/8 of the domain).
                    0.625
                } else {
                    u
                }
            }
            Marginal::LogNormalish => {
                // exp of a scaled normal quantile, renormalized to [0,1):
                // strong concentration near 0 with a long right tail.
                let t = u.powi(3) * (1.0 + 2.0 * u.powi(8));
                t.min(0.999_999)
            }
            Marginal::ZeroInflated => {
                if u < 0.4 {
                    0.0
                } else {
                    ((u - 0.4) / 0.6).powi(2)
                }
            }
        }
    }
}

/// A smooth unimodal bump on [0,1) (cheap Beta(2,2)-like quantile).
fn beta_ish(u: f64) -> f64 {
    u * u * (3.0 - 2.0 * u)
}

/// Draws an `n × d` dataset over `0..c` through a Gaussian copula with
/// equicorrelation `rho` and the given cycle of marginal shapes.
fn copula_dataset(
    n: usize,
    d: usize,
    c: usize,
    rho: f64,
    shapes: &[Marginal],
    seed: u64,
    label: u64,
) -> Dataset {
    let lo = -1.0 / (d as f64 - 1.0).max(1.0) + 1e-6;
    let l = Matrix::equicorrelation(d, rho.clamp(lo, 1.0 - 1e-6))
        .cholesky()
        .expect("clamped equicorrelation is positive definite");
    let mut rng = derive_rng(seed, &[label]);
    let mut rows = Vec::with_capacity(n * d);
    let mut z = vec![0.0; d];
    let mut x = vec![0.0; d];
    for _ in 0..n {
        for zi in z.iter_mut() {
            *zi = standard_normal(&mut rng);
        }
        l.lower_mul_vec(&z, &mut x);
        for (t, &xi) in x.iter().enumerate() {
            let u = normal_cdf(xi).clamp(0.0, 0.999_999_9);
            let v = shapes[t % shapes.len()].transform(u);
            rows.push(((v * c as f64).floor() as isize).clamp(0, c as isize - 1) as u16);
        }
    }
    Dataset::new(rows, d, c).expect("generated values are in domain")
}

/// IPUMS-like census table: bimodal, heavy-tailed, and spiked attributes
/// with moderate correlation.
pub fn ipums_like(n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let shapes = [
        Marginal::Bimodal,
        Marginal::HeavyRight,
        Marginal::Spiked,
        Marginal::HeavyRight,
        Marginal::Bimodal,
    ];
    copula_dataset(n, d, c, 0.4, &shapes, seed, 0x4950_554d) // "IPUM"
}

/// Big-Five-like response-time table: log-normal marginals, weak
/// correlation — the regime where MSW is competitive.
pub fn bfive_like(n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    copula_dataset(n, d, c, 0.1, &[Marginal::LogNormalish], seed, 0x4246_4956) // "BFIV"
}

/// Lending-Club-like loan table: strong correlations, heavy right tails,
/// one spiked attribute (term length).
pub fn loan_like(n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let shapes = [
        Marginal::HeavyRight,
        Marginal::HeavyRight,
        Marginal::Spiked,
        Marginal::LogNormalish,
    ];
    copula_dataset(n, d, c, 0.55, &shapes, seed, 0x4c4f_414e) // "LOAN"
}

/// ACS-like survey table: zero-inflated spiky counts, moderate correlation.
pub fn acs_like(n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let shapes = [
        Marginal::ZeroInflated,
        Marginal::HeavyRight,
        Marginal::Spiked,
    ];
    copula_dataset(n, d, c, 0.3, &shapes, seed, 0x4143_5321) // "ACS!"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::empirical_correlation;

    fn marginal(ds: &Dataset, t: usize) -> Vec<f64> {
        let mut h = vec![0f64; ds.domain()];
        for u in 0..ds.len() {
            h[ds.value(u, t) as usize] += 1.0;
        }
        let n = ds.len() as f64;
        h.iter_mut().for_each(|x| *x /= n);
        h
    }

    #[test]
    fn generators_are_seeded() {
        for gen in [ipums_like, bfive_like, loan_like, acs_like] {
            let a = gen(500, 4, 64, 11);
            let b = gen(500, 4, 64, 11);
            let c = gen(500, 4, 64, 12);
            assert_eq!(a, b);
            assert_ne!(a, c);
        }
    }

    #[test]
    fn ipums_is_moderately_correlated_and_bimodal() {
        let ds = ipums_like(40_000, 4, 64, 1);
        let rho = empirical_correlation(&ds, 0, 1).abs();
        assert!(rho > 0.15 && rho < 0.6, "rho {rho}");
        // Attribute 0 is bimodal: two separated mass concentrations.
        let m = marginal(&ds, 0);
        let low: f64 = m[6..23].iter().sum();
        let mid: f64 = m[26..38].iter().sum();
        let high: f64 = m[41..58].iter().sum();
        assert!(low > 0.4 && high > 0.4, "modes: low {low}, high {high}");
        assert!(mid < 0.05, "valley {mid} between modes");
    }

    #[test]
    fn bfive_is_weakly_correlated_and_skewed() {
        let ds = bfive_like(40_000, 4, 64, 2);
        let rho = empirical_correlation(&ds, 0, 1).abs();
        assert!(rho < 0.15, "rho {rho}");
        let m = marginal(&ds, 0);
        let low_half: f64 = m[..32].iter().sum();
        assert!(low_half > 0.7, "low-half mass {low_half}");
    }

    #[test]
    fn loan_is_strongly_correlated_with_spike() {
        let ds = loan_like(40_000, 4, 64, 3);
        let rho = empirical_correlation(&ds, 0, 1);
        assert!(rho > 0.35, "rho {rho}");
        // Attribute 2 has an atom holding ~30% of the mass.
        let m = marginal(&ds, 2);
        let peak = m.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 0.2, "spike mass {peak}");
    }

    #[test]
    fn acs_is_zero_inflated() {
        let ds = acs_like(40_000, 3, 64, 4);
        let m = marginal(&ds, 0);
        assert!(m[0] > 0.3, "zero atom {}", m[0]);
    }

    #[test]
    fn all_values_in_domain_for_small_c() {
        for gen in [ipums_like, bfive_like, loan_like, acs_like] {
            let ds = gen(2000, 6, 16, 9);
            assert_eq!(ds.domain(), 16);
            for u in 0..ds.len() {
                for t in 0..6 {
                    assert!(ds.value(u, t) < 16);
                }
            }
        }
    }
}
