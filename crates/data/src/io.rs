//! Plain-text dataset I/O.
//!
//! Deployments bring their own records; this module reads/writes the
//! trivial interchange format the `privmdr` CLI uses: one user per line,
//! comma-separated integer values in `0..c`, optional `#` comments and an
//! optional header line (detected by non-numeric content, skipped).

use crate::dataset::{Dataset, DatasetError};

/// Errors from parsing a dataset file.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// A cell failed to parse as an integer.
    BadCell {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A row has a different arity than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Values found.
        got: usize,
        /// Values expected.
        expected: usize,
    },
    /// No data rows found.
    Empty,
    /// The parsed table violates dataset invariants.
    Dataset(DatasetError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::BadCell { line, token } => {
                write!(f, "line {line}: '{token}' is not a value in 0..65536")
            }
            IoError::RaggedRow {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: {got} values, expected {expected}")
            }
            IoError::Empty => write!(f, "no data rows"),
            IoError::Dataset(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Parses a CSV string into a dataset over domain `c`.
pub fn dataset_from_csv(text: &str, c: usize) -> Result<Dataset, IoError> {
    let mut rows: Vec<u16> = Vec::new();
    let mut d: Option<usize> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        // Skip one non-numeric header line.
        if d.is_none() && cells.iter().any(|t| t.parse::<u16>().is_err()) {
            continue;
        }
        let expected = *d.get_or_insert(cells.len());
        if cells.len() != expected {
            return Err(IoError::RaggedRow {
                line: idx + 1,
                got: cells.len(),
                expected,
            });
        }
        for token in cells {
            let v: u16 = token.parse().map_err(|_| IoError::BadCell {
                line: idx + 1,
                token: token.to_string(),
            })?;
            rows.push(v);
        }
    }
    let d = d.ok_or(IoError::Empty)?;
    Dataset::new(rows, d, c).map_err(IoError::Dataset)
}

/// Serializes a dataset to CSV (with an attribute header).
pub fn dataset_to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = (0..ds.dims()).map(|t| format!("a{t}")).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for u in 0..ds.len() {
        let row: Vec<String> = ds.row(u).iter().map(|v| v.to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ds = crate::spec::DatasetSpec::Ipums.generate(50, 3, 16, 1);
        let csv = dataset_to_csv(&ds);
        let back = dataset_from_csv(&csv, 16).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn parses_comments_blank_lines_and_header() {
        let text = "# comment\nage,income\n\n1,2\n3, 4\n";
        let ds = dataset_from_csv(text, 8).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), &[3, 4]);
    }

    #[test]
    fn rejects_ragged_and_bad_cells() {
        assert!(matches!(
            dataset_from_csv("1,2\n3\n", 8),
            Err(IoError::RaggedRow {
                line: 2,
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            dataset_from_csv("1,2\n3,x\n", 8),
            Err(IoError::BadCell { line: 2, .. })
        ));
        assert!(matches!(
            dataset_from_csv("# nothing\n", 8),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn rejects_out_of_domain() {
        assert!(matches!(
            dataset_from_csv("1,9\n", 8),
            Err(IoError::Dataset(_))
        ));
    }
}
