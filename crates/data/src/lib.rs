//! Datasets for the evaluation (paper §5.1, Appendix A.7).
//!
//! * [`dataset`] — the in-memory record table all mechanisms consume.
//! * [`synth`] — multivariate Normal and Laplace generators with a tunable
//!   equicorrelation coefficient (the paper's `Normal`/`Laplace` datasets
//!   and the Fig. 28 covariance sweep).
//! * [`real_like`] — seeded stand-ins for the four real datasets (Ipums,
//!   Bfive, Loan, Acs). The originals cannot be redistributed; these
//!   generators replicate the properties the mechanisms are sensitive to —
//!   marginal shape (skew, atoms, multi-modality) and pairwise correlation
//!   strength — as documented per generator and in DESIGN.md §3.6.
//! * [`spec`] — a small enum naming every dataset so the benchmark harness
//!   can sweep them uniformly.

pub mod dataset;
pub mod io;
pub mod real_like;
pub mod spec;
pub mod synth;

pub use dataset::{Dataset, DatasetError};
pub use io::{dataset_from_csv, dataset_to_csv};
pub use spec::DatasetSpec;

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ~1.5e-7), used for Gaussian-copula marginal transforms.
pub(crate) fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841_344_7),
            (-1.0, 0.158_655_3),
            (2.0, 0.977_249_9),
            (-3.0, 0.001_349_9),
        ];
        for (x, want) in cases {
            let got = normal_cdf(x);
            assert!((got - want).abs() < 1e-5, "cdf({x}) = {got}, want {want}");
        }
    }
}
