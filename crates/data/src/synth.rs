//! Synthetic multivariate datasets (paper §5.1: `Normal`, `Laplace`).
//!
//! Both generators draw `d`-dimensional zero-mean, unit-variance vectors with
//! equicorrelation `ρ` between every pair of attributes (the paper uses
//! `ρ = 0.8` by default and sweeps `ρ ∈ [0, 1]` in Fig. 28), then discretize
//! each coordinate into the ordinal domain `0..c` by equal-width binning of
//! the clipped range `[−CLIP, CLIP]`.
//!
//! * `Normal` — `X = L·Z`, `Z ~ N(0, I)`, `L` the Cholesky factor of the
//!   equicorrelation matrix.
//! * `Laplace` — elliptical multivariate Laplace `X = √W · (L·Z)` with
//!   `W ~ Exp(1)`; `E[W] = 1` keeps unit variances and covariance `ρ`, and
//!   the mixing produces the heavier, spikier marginals the paper relies on
//!   (MSW's advantage on spike distributions, Fig. 3).

use crate::dataset::Dataset;
use privmdr_util::linalg::Matrix;
use privmdr_util::rng::derive_rng;
use privmdr_util::sampling::{standard_exponential, standard_normal};

/// Clipping bound (in standard deviations) for discretization.
const CLIP: f64 = 4.0;

/// Maps a continuous standardized value to a bin in `0..c`.
#[inline]
pub(crate) fn discretize(x: f64, c: usize) -> u16 {
    let t = (x + CLIP) / (2.0 * CLIP);
    ((t * c as f64).floor() as isize).clamp(0, c as isize - 1) as u16
}

/// Cholesky factor of the equicorrelation matrix, with `ρ` clamped to the
/// positive-definite range.
fn correlation_factor(d: usize, rho: f64) -> Matrix {
    // rho = 1 exactly is only semidefinite; back off epsilon so Fig. 28's
    // "Cov = 1.0" column still generates (fully correlated up to 1e-6).
    let lo = -1.0 / (d as f64 - 1.0) + 1e-6;
    let rho = rho.clamp(lo, 1.0 - 1e-6);
    Matrix::equicorrelation(d, rho)
        .cholesky()
        .expect("clamped equicorrelation is positive definite")
}

/// Multivariate normal dataset: `n` users, `d` attributes, domain `c`,
/// pairwise correlation `rho`, deterministic in `seed`.
pub fn normal(n: usize, d: usize, c: usize, rho: f64, seed: u64) -> Dataset {
    let l = correlation_factor(d, rho);
    let mut rng = derive_rng(seed, &[0x4e6f726d]); // "Norm"
    let mut rows = Vec::with_capacity(n * d);
    let mut z = vec![0.0; d];
    let mut x = vec![0.0; d];
    for _ in 0..n {
        for zi in z.iter_mut() {
            *zi = standard_normal(&mut rng);
        }
        l.lower_mul_vec(&z, &mut x);
        rows.extend(x.iter().map(|&v| discretize(v, c)));
    }
    Dataset::new(rows, d, c).expect("generated values are in domain")
}

/// Multivariate Laplace dataset (elliptical mixing): same moments as
/// [`normal`] but heavier tails and a sharper central spike.
pub fn laplace(n: usize, d: usize, c: usize, rho: f64, seed: u64) -> Dataset {
    let l = correlation_factor(d, rho);
    let mut rng = derive_rng(seed, &[0x4c61706c]); // "Lapl"
    let mut rows = Vec::with_capacity(n * d);
    let mut z = vec![0.0; d];
    let mut x = vec![0.0; d];
    for _ in 0..n {
        let w = standard_exponential(&mut rng).sqrt();
        for zi in z.iter_mut() {
            *zi = standard_normal(&mut rng);
        }
        l.lower_mul_vec(&z, &mut x);
        rows.extend(x.iter().map(|&v| discretize(v * w, c)));
    }
    Dataset::new(rows, d, c).expect("generated values are in domain")
}

/// Pearson correlation between two attributes of a dataset (test helper and
/// generator diagnostic).
pub fn empirical_correlation(ds: &Dataset, j: usize, k: usize) -> f64 {
    let n = ds.len() as f64;
    let (mut mj, mut mk) = (0.0, 0.0);
    for u in 0..ds.len() {
        mj += ds.value(u, j) as f64;
        mk += ds.value(u, k) as f64;
    }
    mj /= n;
    mk /= n;
    let (mut cov, mut vj, mut vk) = (0.0, 0.0, 0.0);
    for u in 0..ds.len() {
        let a = ds.value(u, j) as f64 - mj;
        let b = ds.value(u, k) as f64 - mk;
        cov += a * b;
        vj += a * a;
        vk += b * b;
    }
    cov / (vj.sqrt() * vk.sqrt()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretize_covers_domain() {
        assert_eq!(discretize(-10.0, 64), 0);
        assert_eq!(discretize(10.0, 64), 63);
        assert_eq!(discretize(0.0, 64), 32);
        // Monotone.
        let mut prev = 0;
        for i in 0..100 {
            let x = -5.0 + i as f64 * 0.1;
            let b = discretize(x, 64);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn normal_is_seeded_and_shaped() {
        let a = normal(1000, 4, 64, 0.8, 7);
        let b = normal(1000, 4, 64, 0.8, 7);
        let c = normal(1000, 4, 64, 0.8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert_eq!(a.dims(), 4);
    }

    #[test]
    fn normal_center_and_spread() {
        let ds = normal(50_000, 2, 64, 0.0, 1);
        let mean: f64 = (0..ds.len()).map(|u| ds.value(u, 0) as f64).sum::<f64>() / ds.len() as f64;
        // Centered near bin 32 (domain midpoint); std 1 maps to 8 bins.
        assert!((mean - 31.5).abs() < 0.5, "mean bin {mean}");
        let var: f64 = (0..ds.len())
            .map(|u| (ds.value(u, 0) as f64 - mean).powi(2))
            .sum::<f64>()
            / ds.len() as f64;
        assert!((var.sqrt() - 8.0).abs() < 0.5, "std bins {}", var.sqrt());
    }

    #[test]
    fn correlation_tracks_rho() {
        for rho in [0.0, 0.4, 0.8] {
            let ds = normal(60_000, 3, 64, rho, 3);
            let got = empirical_correlation(&ds, 0, 1);
            // Discretization attenuates correlation slightly.
            assert!((got - rho).abs() < 0.08, "rho {rho}: got {got}");
        }
    }

    #[test]
    fn laplace_is_spikier_than_normal() {
        let nrm = normal(60_000, 2, 64, 0.8, 5);
        let lap = laplace(60_000, 2, 64, 0.8, 5);
        // Excess kurtosis: Laplace ~3, Normal ~0. Compare the mass of the
        // central two bins instead (robust under discretization).
        let central = |ds: &Dataset| {
            let mut cnt = 0usize;
            for u in 0..ds.len() {
                let v = ds.value(u, 0);
                if (31..=32).contains(&v) {
                    cnt += 1;
                }
            }
            cnt as f64 / ds.len() as f64
        };
        let (cn, cl) = (central(&nrm), central(&lap));
        assert!(cl > cn * 1.3, "laplace central mass {cl} vs normal {cn}");
        // Correlation still near 0.8.
        let got = empirical_correlation(&lap, 0, 1);
        assert!((got - 0.8).abs() < 0.1, "laplace corr {got}");
    }

    #[test]
    fn extreme_rho_values_do_not_panic() {
        let _ = normal(100, 4, 16, 1.0, 1);
        let _ = normal(100, 4, 16, 0.0, 1);
        let _ = laplace(100, 4, 16, 1.0, 1);
    }
}
