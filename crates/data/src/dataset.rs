//! The in-memory record table (paper §3.1).
//!
//! `n` users each hold a `d`-dimensional record of ordinal values in
//! `0..c` (0-based internally; the paper writes `[c] = {1..c}`), with `c` a
//! power of two. Storage is row-major `Vec<u16>` — the largest evaluated
//! domain is `c = 2¹⁰`, so `u16` halves memory traffic versus `u32` on the
//! million-record tables the experiments sweep.

/// Errors from invalid dataset construction.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// Domain size must be a power of two of at least 2 (paper §3.1).
    BadDomain(usize),
    /// The flat row buffer must hold exactly `n·d` values.
    BadShape { len: usize, d: usize },
    /// A value lies outside `0..c`.
    ValueOutOfDomain { value: u16, domain: usize },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::BadDomain(c) => {
                write!(f, "domain {c} must be a power of two >= 2")
            }
            DatasetError::BadShape { len, d } => {
                write!(f, "row buffer of {len} values is not a multiple of d = {d}")
            }
            DatasetError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain 0..{domain}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A table of `n` users × `d` ordinal attributes over domain `0..c`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    d: usize,
    c: usize,
    rows: Vec<u16>,
}

impl Dataset {
    /// Wraps a row-major buffer (`rows[u*d + t]` = user `u`, attribute `t`).
    pub fn new(rows: Vec<u16>, d: usize, c: usize) -> Result<Self, DatasetError> {
        if !privmdr_util::is_pow2(c) || c < 2 {
            return Err(DatasetError::BadDomain(c));
        }
        if d == 0 || !rows.len().is_multiple_of(d) {
            return Err(DatasetError::BadShape { len: rows.len(), d });
        }
        if let Some(&bad) = rows.iter().find(|&&v| v as usize >= c) {
            return Err(DatasetError::ValueOutOfDomain {
                value: bad,
                domain: c,
            });
        }
        Ok(Dataset { d, c, rows })
    }

    /// Number of users `n`.
    pub fn len(&self) -> usize {
        self.rows.len() / self.d
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes `d`.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Attribute domain size `c`.
    pub fn domain(&self) -> usize {
        self.c
    }

    /// User `u`'s record.
    #[inline]
    pub fn row(&self, u: usize) -> &[u16] {
        &self.rows[u * self.d..(u + 1) * self.d]
    }

    /// User `u`'s value of attribute `t`.
    #[inline]
    pub fn value(&self, u: usize, t: usize) -> u16 {
        self.rows[u * self.d + t]
    }

    /// The raw row-major buffer (used by HIO, which walks whole records).
    pub fn raw_rows(&self) -> &[u16] {
        &self.rows
    }

    /// Attribute `t`'s values for a user group, in group order.
    pub fn gather_attr(&self, t: usize, users: &[u32]) -> Vec<u16> {
        users.iter().map(|&u| self.value(u as usize, t)).collect()
    }

    /// Attribute-pair values `(v_j, v_k)` for a user group, in group order.
    pub fn gather_pair(&self, (j, k): (usize, usize), users: &[u32]) -> Vec<(u16, u16)> {
        users
            .iter()
            .map(|&u| (self.value(u as usize, j), self.value(u as usize, k)))
            .collect()
    }

    /// Restricts the table to `keep` attributes (the Fig. 4 `d` sweep
    /// generates one wide table and truncates it).
    pub fn with_dims(&self, keep: usize) -> Dataset {
        assert!(keep >= 1 && keep <= self.d);
        let n = self.len();
        let mut rows = Vec::with_capacity(n * keep);
        for u in 0..n {
            rows.extend_from_slice(&self.row(u)[..keep]);
        }
        Dataset {
            d: keep,
            c: self.c,
            rows,
        }
    }

    /// Exact (non-private) joint histogram of a pair, row-major `c × c` —
    /// ground truth for tests and the full-marginal workloads (Fig. 11).
    pub fn pair_histogram(&self, (j, k): (usize, usize)) -> Vec<f64> {
        let mut h = vec![0f64; self.c * self.c];
        let n = self.len().max(1) as f64;
        for u in 0..self.len() {
            h[self.value(u, j) as usize * self.c + self.value(u, k) as usize] += 1.0;
        }
        h.iter_mut().for_each(|x| *x /= n);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Dataset::new(vec![0, 1, 2, 3], 2, 4).is_ok());
        assert!(matches!(
            Dataset::new(vec![0; 4], 2, 3),
            Err(DatasetError::BadDomain(3))
        ));
        assert!(matches!(
            Dataset::new(vec![0; 5], 2, 4),
            Err(DatasetError::BadShape { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![0, 4], 2, 4),
            Err(DatasetError::ValueOutOfDomain { value: 4, .. })
        ));
    }

    #[test]
    fn accessors() {
        let ds = Dataset::new(vec![0, 1, 2, 3, 1, 0], 3, 4).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dims(), 3);
        assert_eq!(ds.row(1), &[3, 1, 0]);
        assert_eq!(ds.value(0, 2), 2);
        assert_eq!(ds.gather_attr(1, &[1, 0]), vec![1, 1]);
        assert_eq!(ds.gather_pair((0, 2), &[0, 1]), vec![(0, 2), (3, 0)]);
    }

    #[test]
    fn with_dims_truncates_rows() {
        let ds = Dataset::new(vec![0, 1, 2, 3, 1, 0], 3, 4).unwrap();
        let narrow = ds.with_dims(2);
        assert_eq!(narrow.dims(), 2);
        assert_eq!(narrow.row(0), &[0, 1]);
        assert_eq!(narrow.row(1), &[3, 1]);
    }

    #[test]
    fn pair_histogram_counts() {
        let ds = Dataset::new(vec![0, 1, 0, 1, 3, 2], 2, 4).unwrap();
        let h = ds.pair_histogram((0, 1));
        assert!((h[1] - 2.0 / 3.0).abs() < 1e-12); // (0,1) twice
        assert!((h[3 * 4 + 2] - 1.0 / 3.0).abs() < 1e-12); // (3,2) once
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
