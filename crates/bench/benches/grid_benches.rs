//! Timed kernels of the grid substrate: Norm-Sub, the attribute-consistency
//! step, and Algorithm 1 (response-matrix construction) across domain sizes
//! — the per-pair cost that dominates HDG's Phase 3 setup (Fig. 3's c sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privmdr_grid::consistency::{post_process, PostProcessConfig};
use privmdr_grid::pairs::pair_list;
use privmdr_grid::response_matrix::build_response_matrix;
use privmdr_grid::{norm_sub, Grid1d, Grid2d};
use std::hint::black_box;

fn noisy(i: usize, scale: f64) -> f64 {
    ((i as f64) * 0.7).sin() * scale + 1.0 / 64.0
}

fn bench_norm_sub(c: &mut Criterion) {
    let mut group = c.benchmark_group("norm_sub");
    for &len in &[64usize, 4096, 65_536] {
        let base: Vec<f64> = (0..len).map(|i| noisy(i, 0.01)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &base, |b, base| {
            b.iter(|| {
                let mut x = base.clone();
                norm_sub(&mut x, 1.0);
                black_box(x)
            })
        });
    }
    group.finish();
}

fn bench_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2_post_process");
    for &d in &[3usize, 6, 10] {
        let cdom = 64usize;
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            b.iter(|| {
                let mut one_d: Vec<Option<Grid1d>> = (0..d)
                    .map(|t| {
                        Some(
                            Grid1d::from_freqs(
                                t,
                                16,
                                cdom,
                                (0..16).map(|i| noisy(i + t, 0.02)).collect(),
                            )
                            .unwrap(),
                        )
                    })
                    .collect();
                let mut two_d: Vec<Grid2d> = pair_list(d)
                    .into_iter()
                    .map(|(j, k)| {
                        Grid2d::from_freqs(
                            (j, k),
                            4,
                            cdom,
                            (0..16).map(|i| noisy(i + j + 3 * k, 0.02)).collect(),
                        )
                        .unwrap()
                    })
                    .collect();
                post_process(d, &mut one_d, &mut two_d, &PostProcessConfig::default());
                black_box((one_d, two_d))
            })
        });
    }
    group.finish();
}

fn bench_response_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_response_matrix");
    group.sample_size(20);
    for &cdom in &[64usize, 256, 1024] {
        // Consistent product-form inputs (the post-Phase-2 situation).
        let g1 = 16.min(cdom);
        let g2 = 4;
        let f1: Vec<f64> = {
            let raw: Vec<f64> = (0..g1)
                .map(|i| 1.0 + (i as f64 * 0.3).cos().abs())
                .collect();
            let t: f64 = raw.iter().sum();
            raw.iter().map(|x| x / t).collect()
        };
        let gj = Grid1d::from_freqs(0, g1, cdom, f1.clone()).unwrap();
        let gk = Grid1d::from_freqs(1, g1, cdom, f1.clone()).unwrap();
        let blk = |b: usize| -> f64 { f1[b * (g1 / g2)..(b + 1) * (g1 / g2)].iter().sum() };
        let mut f2 = vec![0.0; g2 * g2];
        for a in 0..g2 {
            for bcol in 0..g2 {
                f2[a * g2 + bcol] = blk(a) * blk(bcol);
            }
        }
        let gjk = Grid2d::from_freqs((0, 1), g2, cdom, f2).unwrap();
        group.bench_with_input(BenchmarkId::new("c", cdom), &cdom, |b, _| {
            b.iter(|| black_box(build_response_matrix(&gj, &gk, &gjk, 1e-7, 100)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_norm_sub,
    bench_consistency,
    bench_response_matrix
);
criterion_main!(benches);
