//! Throughput of the LDP frequency-oracle substrates: per-user perturbation,
//! aggregation, and the exact-vs-fast collection modes whose gap makes the
//! full evaluation sweep tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privmdr_oracles::grr::Grr;
use privmdr_oracles::olh::Olh;
use privmdr_oracles::sw::SquareWave;
use privmdr_oracles::SimMode;
use privmdr_util::rng::derive_rng;
use std::hint::black_box;

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));

    let olh = Olh::new(1.0, 64).unwrap();
    group.bench_function("olh_10k_users", |b| {
        let mut rng = derive_rng(1, &[0]);
        b.iter(|| {
            for i in 0..n {
                black_box(olh.perturb((i % 64) as usize, &mut rng));
            }
        })
    });

    let grr = Grr::new(1.0, 64).unwrap();
    group.bench_function("grr_10k_users", |b| {
        let mut rng = derive_rng(1, &[1]);
        b.iter(|| {
            for i in 0..n {
                black_box(grr.perturb((i % 64) as usize, &mut rng));
            }
        })
    });

    let sw = SquareWave::new(1.0, 64).unwrap();
    group.bench_function("sw_10k_users", |b| {
        let mut rng = derive_rng(1, &[2]);
        b.iter(|| {
            for i in 0..n {
                black_box(sw.perturb((i % 64) as f64 / 64.0, &mut rng));
            }
        })
    });
    group.finish();
}

fn bench_collect_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("olh_collect");
    for &n in &[2_000usize, 20_000] {
        let values: Vec<u32> = (0..n as u32).map(|i| i % 64).collect();
        let olh = Olh::new(1.0, 64).unwrap();
        group.bench_with_input(BenchmarkId::new("exact", n), &values, |b, values| {
            let mut rng = derive_rng(2, &[n as u64]);
            b.iter(|| black_box(olh.collect(values, SimMode::Exact, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("fast", n), &values, |b, values| {
            let mut rng = derive_rng(3, &[n as u64]);
            b.iter(|| black_box(olh.collect(values, SimMode::Fast, &mut rng)))
        });
    }
    group.finish();
}

fn bench_sw_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("sw_em_reconstruction");
    for &bins in &[64usize, 256] {
        let sw = SquareWave::new(1.0, bins).unwrap();
        let values: Vec<u32> = (0..20_000u32).map(|i| i % bins as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(bins), &values, |b, values| {
            let mut rng = derive_rng(4, &[bins as u64]);
            b.iter(|| black_box(sw.collect(values, SimMode::Fast, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_perturb, bench_collect_modes, bench_sw_em);
criterion_main!(benches);
