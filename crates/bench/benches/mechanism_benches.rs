//! End-to-end mechanism cost at a reduced population: fit (the private
//! collection protocol + post-processing) and answering a 200-query
//! workload — the per-repetition cost underlying every figure cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privmdr_bench::Approach;
use privmdr_data::DatasetSpec;
use privmdr_query::workload::WorkloadBuilder;
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_fit_n50k_d4_c64");
    group.sample_size(10);
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(50_000, 4, 64, 42);
    for approach in [
        Approach::Uni,
        Approach::Msw,
        Approach::Calm,
        Approach::Hio,
        Approach::Lhio,
        Approach::Tdg,
        Approach::Hdg,
    ] {
        let mech = approach.mechanism();
        group.bench_with_input(
            BenchmarkId::from_parameter(approach.name()),
            &ds,
            |b, ds| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(mech.fit(ds, 1.0, seed).expect("fit"))
                })
            },
        );
    }
    group.finish();
}

fn bench_answering(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_200_queries_lambda4");
    group.sample_size(10);
    let ds = DatasetSpec::Normal { rho: 0.8 }.generate(50_000, 6, 64, 43);
    let queries = WorkloadBuilder::new(6, 64, 7).random(4, 0.5, 200);
    for approach in [
        Approach::Msw,
        Approach::Calm,
        Approach::Lhio,
        Approach::Tdg,
        Approach::Hdg,
    ] {
        let model = approach.mechanism().fit(&ds, 1.0, 1).expect("fit");
        group.bench_with_input(
            BenchmarkId::from_parameter(approach.name()),
            &queries,
            |b, queries| b.iter(|| black_box(model.answer_all(queries))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_answering);
criterion_main!(benches);
