//! Algorithm 2 (Weighted Update) vs the Appendix A.8 max-entropy estimator:
//! the design choice the paper justifies by efficiency ("almost the same
//! accuracy while with higher efficiency").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privmdr_core::estimation::{max_entropy, weighted_update, PairAnswer};
use std::hint::black_box;

fn pairs_for(lambda: usize) -> (Vec<PairAnswer>, Vec<f64>) {
    let marginals: Vec<f64> = (0..lambda).map(|i| 0.3 + 0.05 * i as f64).collect();
    let mut pairs = Vec::new();
    for i in 0..lambda {
        for j in (i + 1)..lambda {
            // Mild positive correlation on top of the product.
            let f = (marginals[i] * marginals[j] * 1.2).min(1.0);
            pairs.push(PairAnswer { i, j, f });
        }
    }
    (pairs, marginals)
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda_estimation");
    for &lambda in &[3usize, 4, 6, 8, 10] {
        let (pairs, marginals) = pairs_for(lambda);
        group.bench_with_input(
            BenchmarkId::new("weighted_update", lambda),
            &pairs,
            |b, pairs| b.iter(|| black_box(weighted_update(lambda, pairs, 1e-7, 100))),
        );
        group.bench_with_input(
            BenchmarkId::new("max_entropy", lambda),
            &pairs,
            |b, pairs| b.iter(|| black_box(max_entropy(lambda, pairs, &marginals, 1e-7, 100))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
