//! Cached experiment context and parallel MAE measurement.
//!
//! One figure evaluates hundreds of (dataset, approach, parameter) cells
//! that share datasets and workloads; [`Ctx`] caches both so ground truth is
//! computed once per (dataset, workload) pair, and [`Ctx::mae`] measures one
//! cell (several repetitions of fit + answer).

use crate::approach::Approach;
use crate::scale::Scale;
use privmdr_data::{Dataset, DatasetSpec};
use privmdr_query::workload::{true_answers, WorkloadBuilder};
use privmdr_query::RangeQuery;
use privmdr_util::rng::derive_seed;
use privmdr_util::stats::Summary;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A workload family (paper §5.1, A.3, A.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// `|Q|` random λ-D queries of volume ω.
    Random {
        /// Query dimension.
        lambda: usize,
        /// Dimensional query volume.
        omega: f64,
    },
    /// All 2-D range queries of volume ω (Fig. 12).
    Full2dRanges {
        /// Dimensional query volume.
        omega: f64,
    },
    /// All 2-D marginal cells (Fig. 11).
    Full2dMarginals,
    /// Rejection-sampled zero-count λ-D queries (Fig. 13).
    ZeroCount {
        /// Query dimension.
        lambda: usize,
        /// Dimensional query volume.
        omega: f64,
    },
    /// Rejection-sampled non-zero-count λ-D queries (Fig. 14).
    NonZeroCount {
        /// Query dimension.
        lambda: usize,
        /// Dimensional query volume.
        omega: f64,
    },
}

impl WorkloadKind {
    fn cache_key(&self) -> String {
        format!("{self:?}")
    }
}

type DsKey = (String, usize, usize, usize);
type WlKey = (DsKey, String);
type WorkloadEntry = Arc<(Vec<RangeQuery>, Vec<f64>)>;

/// Shared context: scale + dataset/workload caches.
pub struct Ctx {
    /// The experiment scale (population, repetitions, query count).
    pub scale: Scale,
    datasets: Mutex<HashMap<DsKey, Arc<Dataset>>>,
    workloads: Mutex<HashMap<WlKey, WorkloadEntry>>,
}

impl Ctx {
    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Self {
        Ctx {
            scale,
            datasets: Mutex::new(HashMap::new()),
            workloads: Mutex::new(HashMap::new()),
        }
    }

    /// The dataset for `(spec, n, d, c)`, generated once and shared.
    pub fn dataset(&self, spec: DatasetSpec, n: usize, d: usize, c: usize) -> Arc<Dataset> {
        let key = (spec.name(), n, d, c);
        if let Some(ds) = self.datasets.lock().expect("poisoned").get(&key) {
            return Arc::clone(ds);
        }
        let seed = derive_seed(self.scale.seed, &[0xda7a, n as u64, d as u64, c as u64]);
        let ds = Arc::new(spec.generate(n, d, c, seed));
        self.datasets
            .lock()
            .expect("poisoned")
            .entry(key)
            .or_insert(ds)
            .clone()
    }

    /// The `(queries, ground truth)` for a workload over a dataset,
    /// computed once and shared.
    pub fn workload(
        &self,
        spec: DatasetSpec,
        n: usize,
        d: usize,
        c: usize,
        kind: WorkloadKind,
    ) -> WorkloadEntry {
        let ds_key = (spec.name(), n, d, c);
        let key = (ds_key, kind.cache_key());
        if let Some(wl) = self.workloads.lock().expect("poisoned").get(&key) {
            return Arc::clone(wl);
        }
        let ds = self.dataset(spec, n, d, c);
        let wl_seed = derive_seed(self.scale.seed, &[0x3017, d as u64, c as u64]);
        let builder = WorkloadBuilder::new(d, c, wl_seed);
        let queries = match kind {
            WorkloadKind::Random { lambda, omega } => {
                builder.random(lambda, omega, self.scale.queries)
            }
            WorkloadKind::Full2dRanges { omega } => builder.full_2d_ranges(omega),
            WorkloadKind::Full2dMarginals => builder.full_2d_marginals(),
            WorkloadKind::ZeroCount { lambda, omega } => {
                builder.zero_count(&ds, lambda, omega, self.scale.queries)
            }
            WorkloadKind::NonZeroCount { lambda, omega } => {
                builder.nonzero_count(&ds, lambda, omega, self.scale.queries)
            }
        };
        let truths = true_answers(&ds, &queries);
        let entry = Arc::new((queries, truths));
        self.workloads
            .lock()
            .expect("poisoned")
            .entry(key)
            .or_insert(entry)
            .clone()
    }

    /// Measures one cell: fits `approach` `reps` times (different seeds) and
    /// summarizes the per-repetition MAEs.
    #[allow(clippy::too_many_arguments)]
    pub fn mae(
        &self,
        spec: DatasetSpec,
        n: usize,
        d: usize,
        c: usize,
        approach: &Approach,
        epsilon: f64,
        kind: WorkloadKind,
    ) -> Summary {
        let ds = self.dataset(spec, n, d, c);
        let wl = self.workload(spec, n, d, c, kind);
        let (queries, truths) = (&wl.0, &wl.1);
        let mech = approach.mechanism();
        let maes: Vec<f64> = (0..self.scale.reps)
            .map(|rep| {
                let seed = derive_seed(
                    self.scale.seed,
                    &[0xf17, rep, (epsilon * 1e6) as u64, n as u64],
                );
                match mech.fit(&ds, epsilon, seed) {
                    Ok(model) => privmdr_query::mae(&model.answer_all(queries), truths),
                    Err(e) => {
                        eprintln!("warn: {} failed to fit: {e}", approach.name());
                        f64::NAN
                    }
                }
            })
            .filter(|m| m.is_finite())
            .collect();
        Summary::of(&maes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        let mut scale = Scale::quick();
        scale.n = 5_000;
        scale.reps = 2;
        scale.queries = 10;
        Ctx::new(scale)
    }

    #[test]
    fn dataset_cache_shares_instances() {
        let ctx = tiny_ctx();
        let a = ctx.dataset(DatasetSpec::Ipums, 5000, 3, 16);
        let b = ctx.dataset(DatasetSpec::Ipums, 5000, 3, 16);
        assert!(Arc::ptr_eq(&a, &b));
        let c = ctx.dataset(DatasetSpec::Ipums, 5000, 4, 16);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn workload_cache_shares_instances() {
        let ctx = tiny_ctx();
        let kind = WorkloadKind::Random {
            lambda: 2,
            omega: 0.5,
        };
        let a = ctx.workload(DatasetSpec::Ipums, 5000, 3, 16, kind);
        let b = ctx.workload(DatasetSpec::Ipums, 5000, 3, 16, kind);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.0.len(), 10);
        assert_eq!(a.0.len(), a.1.len());
    }

    #[test]
    fn mae_cell_runs_all_approaches() {
        let ctx = tiny_ctx();
        for approach in [Approach::Uni, Approach::Msw, Approach::Tdg, Approach::Hdg] {
            let s = ctx.mae(
                DatasetSpec::Normal { rho: 0.8 },
                5000,
                3,
                16,
                &approach,
                1.0,
                WorkloadKind::Random {
                    lambda: 2,
                    omega: 0.5,
                },
            );
            assert_eq!(s.count, 2, "{}", approach.name());
            assert!(s.mean.is_finite() && s.mean >= 0.0);
        }
    }

    #[test]
    fn uni_beats_nothing_hdg_beats_uni() {
        let mut scale = Scale::quick();
        scale.n = 40_000;
        scale.reps = 2;
        scale.queries = 30;
        let ctx = Ctx::new(scale);
        let spec = DatasetSpec::Normal { rho: 0.8 };
        let kind = WorkloadKind::Random {
            lambda: 2,
            omega: 0.5,
        };
        let uni = ctx.mae(spec, 40_000, 4, 32, &Approach::Uni, 1.0, kind);
        let hdg = ctx.mae(spec, 40_000, 4, 32, &Approach::Hdg, 1.0, kind);
        assert!(hdg.mean < uni.mean, "HDG {} vs Uni {}", hdg.mean, uni.mean);
    }
}
