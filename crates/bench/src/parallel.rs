//! Minimal scoped-thread work distribution (no external thread pool).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on `available_parallelism` threads, preserving
/// order. Items are claimed through an atomic cursor, so uneven cell costs
/// (HIO vs Uni) balance naturally.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let threads = threads.min(items.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slot_ptr = SlotVec(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            let slot_ptr = &slot_ptr;
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                // SAFETY: each index is claimed by exactly one thread (the
                // atomic cursor hands out unique values) and `slots` outlives
                // the scope, so this write is exclusive and in-bounds.
                unsafe { *slot_ptr.0.add(idx) = Some(r) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot written"))
        .collect()
}

/// Send/Sync wrapper for the raw slot pointer; safe because slot indices are
/// partitioned by the atomic cursor (see SAFETY above).
struct SlotVec<R>(*mut Option<R>);
unsafe impl<R: Send> Send for SlotVec<R> {}
unsafe impl<R: Send> Sync for SlotVec<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            // Simulate uneven costs.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc.wrapping_add(x)
        });
        assert_eq!(out.len(), 64);
    }
}
