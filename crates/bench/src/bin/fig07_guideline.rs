//! Fig. 7: guideline-chosen granularities vs every fixed (g1, g2), d = 6.
use privmdr_bench::figures::guideline_check;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    guideline_check::run(&ctx, "fig07", &[6]);
}
