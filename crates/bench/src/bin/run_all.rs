//! Runs the entire evaluation suite (every figure and table) at the
//! selected scale. At `--quick` this is a smoke test; default reproduces
//! all trends; `--full` is the paper's scale.
use privmdr_bench::figures::{
    self, convergence, error_dist, guideline_check, sigma_split, sweeps, table2,
};
use privmdr_bench::{Approach, Ctx, Scale};
use privmdr_data::DatasetSpec;

fn main() {
    let scale = Scale::from_args();
    println!(
        "running full suite at {:?} scale (n={}, reps={}, |Q|={})",
        scale.tier, scale.n, scale.reps, scale.queries
    );
    let ctx = Ctx::new(scale);
    let started = std::time::Instant::now();

    table2::run("table2");
    figures::fig_vary_eps(
        &ctx,
        "fig01",
        &DatasetSpec::main_four(),
        &[2, 4],
        &Approach::all_seven(),
    );
    sweeps::vary_omega(&ctx, "fig02", &DatasetSpec::main_four(), &[2, 4]);
    sweeps::vary_c(&ctx, "fig03", &[2, 4]);
    sweeps::vary_d(&ctx, "fig04", &DatasetSpec::main_four(), &[2, 4]);
    sweeps::vary_lambda(&ctx, "fig05");
    sweeps::vary_n(&ctx, "fig06", &[2, 4]);
    guideline_check::run(&ctx, "fig07", &[6]);
    sweeps::components(&ctx, "fig08", &[2, 4]);
    error_dist::run(&ctx, "fig09", Approach::Tdg);
    error_dist::run(&ctx, "fig10", Approach::Hdg);
    sweeps::full_marginals(&ctx, "fig11");
    sweeps::full_ranges(&ctx, "fig12");
    sweeps::count_extremes(&ctx, "fig13", true);
    sweeps::count_extremes(&ctx, "fig14", false);
    sigma_split::run(&ctx, "fig15");
    guideline_check::run(&ctx, "fig16", &[4, 8, 10]);
    convergence::alg1(&ctx, "fig17");
    convergence::alg2(&ctx, "fig18");
    figures::fig_vary_eps(
        &ctx,
        "fig19",
        &DatasetSpec::appendix_two(),
        &[2, 4],
        &Approach::all_seven(),
    );
    sweeps::vary_omega(&ctx, "fig20", &DatasetSpec::appendix_two(), &[2, 4]);
    sweeps::vary_d(&ctx, "fig21", &DatasetSpec::appendix_two(), &[2, 4]);
    figures::fig_vary_eps(
        &ctx,
        "fig23",
        &DatasetSpec::main_four(),
        &[6],
        &Approach::six_without_hio(),
    );
    sweeps::vary_omega(&ctx, "fig24", &DatasetSpec::main_four(), &[6]);
    sweeps::vary_c(&ctx, "fig25", &[6]);
    sweeps::vary_d(&ctx, "fig26", &DatasetSpec::main_four(), &[6]);
    sweeps::vary_n(&ctx, "fig27", &[6]);
    sweeps::covariance_sweep(&ctx, "fig28");

    println!("\nsuite finished in {:.1?}", started.elapsed());
}
