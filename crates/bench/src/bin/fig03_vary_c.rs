//! Fig. 3: MAE vs domain size c on the synthetic datasets, λ = 2 and 4.
use privmdr_bench::figures::sweeps::vary_c;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    vary_c(&ctx, "fig03", &[2, 4]);
}
