//! Fig. 8 / Appendix A.1: Phase-2 ablation (ITDG/IHDG vs TDG/HDG).
use privmdr_bench::figures::sweeps::components;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    components(&ctx, "fig08", &[2, 4]);
}
