//! Extension experiment: 1-D range-query estimators under LDP.
//!
//! The paper's §1/§6 positions TDG/HDG against prior art that handles only
//! one-dimensional ranges — Cormode et al.'s hierarchical intervals and
//! Haar wavelets \[9\] and Li et al.'s Square Wave \[31\]. This runner compares
//! all of them (plus HDG's own 1-D grid substrate) on 1-D range workloads,
//! reproducing the regime where SW's EM reconstruction and hierarchical
//! estimators shine at different budgets.

use privmdr_bench::report::{emit, Table};
use privmdr_bench::Scale;
use privmdr_data::DatasetSpec;
use privmdr_grid::Grid1d;
use privmdr_hierarchy::range1d::{HaarRange1d, HierarchicalRange1d};
use privmdr_oracles::sw::SquareWave;
use privmdr_oracles::SimMode;
use privmdr_util::rng::derive_rng;
use privmdr_util::stats::Summary;
use rand::RngExt;

fn main() {
    let scale = Scale::from_args();
    let c = 64usize;
    let eps_sweep = scale.eps_sweep();
    let mut tables = Vec::new();

    for spec in [
        DatasetSpec::Ipums,
        DatasetSpec::Bfive,
        DatasetSpec::Laplace { rho: 0.8 },
    ] {
        let ds = spec.generate(scale.n, 1, c, scale.seed);
        let values: Vec<u16> = (0..ds.len()).map(|u| ds.value(u, 0)).collect();
        // 1-D range workload of volume 0.5.
        let mut wl_rng = derive_rng(scale.seed, &[0x1d]);
        let ranges: Vec<(usize, usize)> = (0..scale.queries)
            .map(|_| {
                let lo = wl_rng.random_range(0..=c / 2);
                (lo, lo + c / 2 - 1)
            })
            .collect();
        let truths: Vec<f64> = ranges
            .iter()
            .map(|&(lo, hi)| {
                values
                    .iter()
                    .filter(|&&v| (lo..=hi).contains(&(v as usize)))
                    .count() as f64
                    / values.len() as f64
            })
            .collect();

        let mut table = Table::new(
            format!("ext_range1d: {} (1-D range MAE vs epsilon)", spec.name()),
            "epsilon",
            eps_sweep.iter().map(|e| format!("{e:.1}")).collect(),
        );
        type Estimator<'a> = Box<dyn Fn(f64, u64) -> Vec<f64> + 'a>;
        let estimators: Vec<(&str, Estimator)> = vec![
            (
                "SquareWave+EM",
                Box::new(|eps, seed| {
                    let mut rng = derive_rng(seed, &[1]);
                    let sw = SquareWave::new(eps, c).expect("params");
                    let v32: Vec<u32> = values.iter().map(|&v| v as u32).collect();
                    let dist = sw.collect(&v32, SimMode::Fast, &mut rng);
                    ranges
                        .iter()
                        .map(|&(lo, hi)| dist[lo..=hi].iter().sum())
                        .collect()
                }),
            ),
            (
                "Hierarchy(b=4)+CI",
                Box::new(|eps, seed| {
                    let mut rng = derive_rng(seed, &[2]);
                    let m = HierarchicalRange1d::fit(4, c, &values, eps, SimMode::Fast, &mut rng)
                        .expect("fit");
                    ranges.iter().map(|&(lo, hi)| m.answer(lo, hi)).collect()
                }),
            ),
            (
                "HaarWavelet",
                Box::new(|eps, seed| {
                    let mut rng = derive_rng(seed, &[3]);
                    let m =
                        HaarRange1d::fit(c, &values, eps, SimMode::Fast, &mut rng).expect("fit");
                    ranges.iter().map(|&(lo, hi)| m.answer(lo, hi)).collect()
                }),
            ),
            (
                "HDG-1D-grid(g1=16)",
                Box::new(|eps, seed| {
                    let mut rng = derive_rng(seed, &[4]);
                    let g = Grid1d::collect(0, 16, c, &values, eps, SimMode::Fast, &mut rng)
                        .expect("fit");
                    ranges
                        .iter()
                        .map(|&(lo, hi)| g.answer_uniform(lo, hi))
                        .collect()
                }),
            ),
        ];
        for (name, estimator) in estimators {
            let row: Vec<Summary> = eps_sweep
                .iter()
                .map(|&eps| {
                    let maes: Vec<f64> = (0..scale.reps)
                        .map(|rep| {
                            let est = estimator(eps, scale.seed ^ rep.wrapping_mul(7919));
                            privmdr_query::mae(&est, &truths)
                        })
                        .collect();
                    Summary::of(&maes)
                })
                .collect();
            table.push_row(name, row);
        }
        tables.push(table);
    }
    emit("ext_range1d", &tables);
}
