//! Fig. 16 / Appendix A.5: guideline verification at d = 4, 8, 10.
use privmdr_bench::figures::guideline_check;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    guideline_check::run(&ctx, "fig16", &[4, 8, 10]);
}
