//! Fig. 1: MAE vs ε on all four datasets, λ = 2 and 4, all seven approaches.
use privmdr_bench::figures::fig_vary_eps;
use privmdr_bench::{Approach, Ctx, Scale};
use privmdr_data::DatasetSpec;

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    fig_vary_eps(
        &ctx,
        "fig01",
        &DatasetSpec::main_four(),
        &[2, 4],
        &Approach::all_seven(),
    );
}
