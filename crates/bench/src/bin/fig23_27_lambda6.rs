//! Figs. 23–27: the λ = 6 variants of Figs. 1, 2, 3, 4, 6.
//!
//! HIO is omitted at λ = 6 (the paper itself drops it from most of these
//! panels because its MAE exceeds the axis; exact-mode HIO at λ = 6 is also
//! the single most expensive cell in the whole suite).
use privmdr_bench::figures::fig_vary_eps;
use privmdr_bench::figures::sweeps::{vary_c, vary_d, vary_n, vary_omega};
use privmdr_bench::{Approach, Ctx, Scale};
use privmdr_data::DatasetSpec;

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    fig_vary_eps(
        &ctx,
        "fig23",
        &DatasetSpec::main_four(),
        &[6],
        &Approach::six_without_hio(),
    );
    vary_omega(&ctx, "fig24", &DatasetSpec::main_four(), &[6]);
    vary_c(&ctx, "fig25", &[6]);
    vary_d(&ctx, "fig26", &DatasetSpec::main_four(), &[6]);
    vary_n(&ctx, "fig27", &[6]);
}
