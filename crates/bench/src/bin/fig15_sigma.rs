//! Fig. 15 / Appendix A.5: HDG MAE vs the user-split fraction σ = n1/n.
use privmdr_bench::figures::sigma_split;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    sigma_split::run(&ctx, "fig15");
}
