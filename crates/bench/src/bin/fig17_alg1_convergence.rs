//! Fig. 17 / Appendix A.6: Algorithm 1 (response matrix) convergence.
use privmdr_bench::figures::convergence;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    convergence::alg1(&ctx, "fig17");
}
