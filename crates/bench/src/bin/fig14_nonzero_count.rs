//! Fig. 14 / Appendix A.4: non-0-count high-dimensional queries (ω = 0.7).
use privmdr_bench::figures::sweeps::count_extremes;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    count_extremes(&ctx, "fig14", false);
}
