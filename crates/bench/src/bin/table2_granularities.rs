//! Table 2: recommended granularities under the guideline (pure computation).
use privmdr_bench::figures::table2;

fn main() {
    table2::run("table2");
}
