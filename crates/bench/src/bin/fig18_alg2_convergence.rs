//! Fig. 18 / Appendix A.6: Algorithm 2 (λ-D estimation) convergence.
use privmdr_bench::figures::convergence;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    convergence::alg2(&ctx, "fig18");
}
