//! Fig. 4: MAE vs number of attributes d, λ = 2 and 4.
use privmdr_bench::figures::sweeps::vary_d;
use privmdr_bench::{Ctx, Scale};
use privmdr_data::DatasetSpec;

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    vary_d(&ctx, "fig04", &DatasetSpec::main_four(), &[2, 4]);
}
