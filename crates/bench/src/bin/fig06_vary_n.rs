//! Fig. 6: MAE vs population n on the synthetic datasets, λ = 2 and 4.
use privmdr_bench::figures::sweeps::vary_n;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    vary_n(&ctx, "fig06", &[2, 4]);
}
