//! Fig. 5: MAE vs query dimension λ (d = 10 so λ reaches 10).
use privmdr_bench::figures::sweeps::vary_lambda;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    vary_lambda(&ctx, "fig05");
}
