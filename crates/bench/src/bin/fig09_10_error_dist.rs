//! Figs. 9–10 / Appendix A.2: per-query standard-error distributions.
use privmdr_bench::figures::error_dist;
use privmdr_bench::{Approach, Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    error_dist::run(&ctx, "fig09", Approach::Tdg);
    error_dist::run(&ctx, "fig10", Approach::Hdg);
}
