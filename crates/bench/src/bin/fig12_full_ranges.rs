//! Fig. 12 / Appendix A.3: all 2-D range queries (ω = 0.5) vs ε.
use privmdr_bench::figures::sweeps::full_ranges;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    full_ranges(&ctx, "fig12");
}
