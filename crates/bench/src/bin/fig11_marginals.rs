//! Fig. 11 / Appendix A.3: all 2-D marginal queries vs ε.
use privmdr_bench::figures::sweeps::full_marginals;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    full_marginals(&ctx, "fig11");
}
