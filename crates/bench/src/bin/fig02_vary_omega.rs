//! Fig. 2: MAE vs dimensional query volume ω, λ = 2 and 4.
use privmdr_bench::figures::sweeps::vary_omega;
use privmdr_bench::{Ctx, Scale};
use privmdr_data::DatasetSpec;

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    vary_omega(&ctx, "fig02", &DatasetSpec::main_four(), &[2, 4]);
}
