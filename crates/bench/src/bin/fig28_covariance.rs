//! Fig. 28: covariance sweep on the synthetic datasets, λ = 2, 4, 6.
use privmdr_bench::figures::sweeps::covariance_sweep;
use privmdr_bench::{Ctx, Scale};

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    covariance_sweep(&ctx, "fig28");
}
