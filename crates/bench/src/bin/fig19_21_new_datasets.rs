//! Figs. 19–21 / Appendix A.7: Loan and Acs stand-ins — ε, ω, and d sweeps.
use privmdr_bench::figures::fig_vary_eps;
use privmdr_bench::figures::sweeps::{vary_d, vary_omega};
use privmdr_bench::{Approach, Ctx, Scale};
use privmdr_data::DatasetSpec;

fn main() {
    let ctx = Ctx::new(Scale::from_args());
    let datasets = DatasetSpec::appendix_two();
    fig_vary_eps(&ctx, "fig19", &datasets, &[2, 4], &Approach::all_seven());
    vary_omega(&ctx, "fig20", &datasets, &[2, 4]);
    vary_d(&ctx, "fig21", &datasets, &[2, 4]);
}
