//! Figs. 9–10 / Appendix A.2: distribution of per-query standard errors for
//! TDG and HDG.
//!
//! For each dataset and λ ∈ {2, 4}, fit the mechanism `reps` times, average
//! each query's absolute error across repetitions (the appendix's
//! methodology), and report a 10-bucket histogram.

use super::{DEFAULT_C, DEFAULT_D, DEFAULT_EPS, DEFAULT_OMEGA};
use crate::approach::Approach;
use crate::experiment::{Ctx, WorkloadKind};
use crate::report::{emit, Table};
use privmdr_data::DatasetSpec;
use privmdr_util::rng::derive_seed;
use privmdr_util::stats::{Histogram, Summary};

/// Runs the error-distribution experiment for one approach (Fig. 9 = TDG,
/// Fig. 10 = HDG).
pub fn run(ctx: &Ctx, fig: &str, approach: Approach) {
    let mut tables = Vec::new();
    for spec in DatasetSpec::main_four() {
        for lambda in [2usize, 4] {
            let kind = WorkloadKind::Random {
                lambda,
                omega: DEFAULT_OMEGA,
            };
            let ds = ctx.dataset(spec, ctx.scale.n, DEFAULT_D, DEFAULT_C);
            let wl = ctx.workload(spec, ctx.scale.n, DEFAULT_D, DEFAULT_C, kind);
            let (queries, truths) = (&wl.0, &wl.1);
            let mech = approach.mechanism();

            // Mean absolute error per query across repetitions.
            let mut per_query = vec![0.0f64; queries.len()];
            let mut fitted = 0usize;
            for rep in 0..ctx.scale.reps {
                let seed = derive_seed(ctx.scale.seed, &[0xe44, rep]);
                let Ok(model) = mech.fit(&ds, DEFAULT_EPS, seed) else {
                    continue;
                };
                let est = model.answer_all(queries);
                for ((pq, e), t) in per_query.iter_mut().zip(&est).zip(truths) {
                    *pq += (e - t).abs();
                }
                fitted += 1;
            }
            if fitted == 0 {
                continue;
            }
            per_query.iter_mut().for_each(|x| *x /= fitted as f64);

            let max_err = per_query.iter().cloned().fold(0.0, f64::max).max(1e-6);
            let mut hist = Histogram::new(0.0, max_err * 1.0001, 10);
            for &e in &per_query {
                hist.add(e);
            }
            let mut table = Table::new(
                format!(
                    "{fig}: {} standard-error distribution, {}, lambda={lambda}",
                    approach.name(),
                    spec.name()
                ),
                "error bucket center",
                hist.rows()
                    .iter()
                    .map(|(center, _)| format!("{center:.3}"))
                    .collect(),
            );
            table.push_row(
                "queries",
                hist.rows()
                    .iter()
                    .map(|&(_, count)| Summary {
                        mean: count as f64,
                        std_dev: 0.0,
                        min: 0.0,
                        max: 0.0,
                        count: 1,
                    })
                    .collect(),
            );
            tables.push(table);
        }
    }
    emit(fig, &tables);
}
