//! One module per paper figure/table. Each exposes `run(&Ctx)` which prints
//! markdown tables and writes `results/<fig>.csv`.

pub mod convergence;
pub mod error_dist;
pub mod guideline_check;
pub mod sigma_split;
pub mod sweeps;
pub mod table2;

use crate::approach::Approach;
use crate::experiment::{Ctx, WorkloadKind};
use crate::report::{emit, Table};
use privmdr_data::DatasetSpec;

/// Paper defaults shared by every figure (§5.1).
pub const DEFAULT_D: usize = 6;
/// Default attribute domain size.
pub const DEFAULT_C: usize = 64;
/// Default dimensional query volume.
pub const DEFAULT_OMEGA: f64 = 0.5;
/// Default privacy budget when a figure sweeps another axis.
pub const DEFAULT_EPS: f64 = 1.0;

/// Fig. 1 (and 23): MAE vs ε for every dataset and λ.
pub fn fig_vary_eps(
    ctx: &Ctx,
    fig: &str,
    datasets: &[DatasetSpec],
    lambdas: &[usize],
    approaches: &[Approach],
) {
    let eps = ctx.scale.eps_sweep();
    let mut tables = Vec::new();
    for &spec in datasets {
        for &lambda in lambdas {
            let kind = WorkloadKind::Random {
                lambda,
                omega: DEFAULT_OMEGA,
            };
            let mut table = Table::new(
                format!("{fig}: {}, lambda={lambda} (MAE vs epsilon)", spec.name()),
                "epsilon",
                eps.iter().map(|e| format!("{e:.1}")).collect(),
            );
            let cells: Vec<(Approach, f64)> = approaches
                .iter()
                .flat_map(|&a| eps.iter().map(move |&e| (a, e)))
                .collect();
            let results = privmdr_util::par::par_map(&cells, |&(a, e)| {
                ctx.mae(spec, ctx.scale.n, DEFAULT_D, DEFAULT_C, &a, e, kind)
            });
            for (ai, a) in approaches.iter().enumerate() {
                let row = results[ai * eps.len()..(ai + 1) * eps.len()].to_vec();
                table.push_row(a.name(), row);
            }
            tables.push(table);
        }
    }
    emit(fig, &tables);
}

/// Generic single-parameter sweep driver used by Figs. 2–6, 11–14, 19–28.
///
/// `x_values` labels the sweep; `cell` maps `(x index, approach)` to the
/// `(spec, n, d, c, epsilon, workload)` of one measurement.
#[allow(clippy::type_complexity)]
pub fn run_generic_sweep(
    ctx: &Ctx,
    fig: &str,
    subplots: Vec<(
        String,
        Vec<String>,
        Box<
            dyn Fn(usize, &Approach) -> (DatasetSpec, usize, usize, usize, f64, WorkloadKind)
                + Sync,
        >,
    )>,
    approaches: &[Approach],
    x_label: &str,
) {
    let mut tables = Vec::new();
    for (title, x_values, cell_fn) in subplots {
        let mut table = Table::new(title, x_label, x_values.clone());
        let cells: Vec<(usize, Approach)> = approaches
            .iter()
            .flat_map(|&a| (0..x_values.len()).map(move |xi| (xi, a)))
            .collect();
        let results = privmdr_util::par::par_map(&cells, |&(xi, a)| {
            let (spec, n, d, c, e, kind) = cell_fn(xi, &a);
            ctx.mae(spec, n, d, c, &a, e, kind)
        });
        for (ai, a) in approaches.iter().enumerate() {
            let row = results[ai * x_values.len()..(ai + 1) * x_values.len()].to_vec();
            table.push_row(a.name(), row);
        }
        tables.push(table);
    }
    emit(fig, &tables);
}
