//! Parameter-sweep figures: Figs. 2–6, 11–14, 19–21, 23–28.
//!
//! All delegate to [`run_generic_sweep`]; each function encodes one paper
//! figure's axes, datasets, and legend.

use super::{run_generic_sweep, DEFAULT_C, DEFAULT_D, DEFAULT_EPS, DEFAULT_OMEGA};
use crate::approach::Approach;
use crate::experiment::{Ctx, WorkloadKind};
use crate::scale::Tier;
use privmdr_data::DatasetSpec;

type CellFn =
    Box<dyn Fn(usize, &Approach) -> (DatasetSpec, usize, usize, usize, f64, WorkloadKind) + Sync>;

/// Fig. 2 (24 at λ=6, 20 for Loan/Acs): MAE vs ω.
pub fn vary_omega(ctx: &Ctx, fig: &str, datasets: &[DatasetSpec], lambdas: &[usize]) {
    let omegas = ctx.scale.omega_sweep();
    let n = ctx.scale.n;
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for &spec in datasets {
        for &lambda in lambdas {
            let omegas_c = omegas.clone();
            subplots.push((
                format!("{fig}: {}, lambda={lambda} (MAE vs omega)", spec.name()),
                omegas.iter().map(|o| format!("{o:.1}")).collect(),
                Box::new(move |xi, _| {
                    (
                        spec,
                        n,
                        DEFAULT_D,
                        DEFAULT_C,
                        DEFAULT_EPS,
                        WorkloadKind::Random {
                            lambda,
                            omega: omegas_c[xi],
                        },
                    )
                }),
            ));
        }
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::all_seven(), "omega");
}

/// Fig. 3 (25 at λ=6): MAE vs domain size c on the synthetic datasets.
pub fn vary_c(ctx: &Ctx, fig: &str, lambdas: &[usize]) {
    let cs: Vec<usize> = match ctx.scale.tier {
        Tier::Quick => vec![16, 64],
        Tier::Default => vec![16, 32, 64, 128, 256],
        Tier::Full => vec![16, 32, 64, 128, 256, 512, 1024],
    };
    let n = ctx.scale.n;
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::synthetic_two() {
        for &lambda in lambdas {
            let cs_c = cs.clone();
            subplots.push((
                format!("{fig}: {}, lambda={lambda} (MAE vs c)", spec.name()),
                cs.iter().map(|c| format!("{c}")).collect(),
                Box::new(move |xi, _| {
                    (
                        spec,
                        n,
                        DEFAULT_D,
                        cs_c[xi],
                        DEFAULT_EPS,
                        WorkloadKind::Random {
                            lambda,
                            omega: DEFAULT_OMEGA,
                        },
                    )
                }),
            ));
        }
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "c");
}

/// Fig. 4 (26 at λ=6, 21 for Loan/Acs): MAE vs number of attributes d.
pub fn vary_d(ctx: &Ctx, fig: &str, datasets: &[DatasetSpec], lambdas: &[usize]) {
    let n = ctx.scale.n;
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for &spec in datasets {
        for &lambda in lambdas {
            let ds: Vec<usize> = (lambda.max(3)..=10).collect();
            let ds_c = ds.clone();
            subplots.push((
                format!("{fig}: {}, lambda={lambda} (MAE vs d)", spec.name()),
                ds.iter().map(|d| format!("{d}")).collect(),
                Box::new(move |xi, _| {
                    (
                        spec,
                        n,
                        ds_c[xi],
                        DEFAULT_C,
                        DEFAULT_EPS,
                        WorkloadKind::Random {
                            lambda,
                            omega: DEFAULT_OMEGA,
                        },
                    )
                }),
            ));
        }
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "d");
}

/// Fig. 5: MAE vs query dimension λ (needs d = 10 so λ can reach 10; the
/// paper's caption says d = 6 but its x-axis runs to λ = 10 — see
/// EXPERIMENTS.md).
pub fn vary_lambda(ctx: &Ctx, fig: &str) {
    let lambdas: Vec<usize> = match ctx.scale.tier {
        Tier::Quick => vec![2, 4, 6],
        _ => (2..=10).collect(),
    };
    let n = ctx.scale.n;
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::main_four() {
        let lambdas_c = lambdas.clone();
        subplots.push((
            format!("{fig}: {} (MAE vs lambda, d=10)", spec.name()),
            lambdas.iter().map(|l| format!("{l}")).collect(),
            Box::new(move |xi, _| {
                (
                    spec,
                    n,
                    10,
                    DEFAULT_C,
                    DEFAULT_EPS,
                    WorkloadKind::Random {
                        lambda: lambdas_c[xi],
                        omega: DEFAULT_OMEGA,
                    },
                )
            }),
        ));
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "lambda");
}

/// Fig. 6 (27 at λ=6): MAE vs population n on the synthetic datasets.
pub fn vary_n(ctx: &Ctx, fig: &str, lambdas: &[usize]) {
    let ns: Vec<usize> = match ctx.scale.tier {
        Tier::Quick => vec![20_000, 50_000],
        Tier::Default => vec![50_000, 100_000, 200_000, 400_000, 800_000],
        Tier::Full => vec![100_000, 316_228, 1_000_000, 3_162_278, 10_000_000],
    };
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::synthetic_two() {
        for &lambda in lambdas {
            let ns_c = ns.clone();
            subplots.push((
                format!("{fig}: {}, lambda={lambda} (MAE vs n)", spec.name()),
                ns.iter()
                    .map(|n| format!("{:.1}", (*n as f64).log10()))
                    .collect(),
                Box::new(move |xi, _| {
                    (
                        spec,
                        ns_c[xi],
                        DEFAULT_D,
                        DEFAULT_C,
                        DEFAULT_EPS,
                        WorkloadKind::Random {
                            lambda,
                            omega: DEFAULT_OMEGA,
                        },
                    )
                }),
            ));
        }
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::all_seven(), "lg(n)");
}

/// Fig. 11: full 2-D marginal workloads vs ε.
pub fn full_marginals(ctx: &Ctx, fig: &str) {
    let eps = ctx.scale.eps_sweep();
    let n = ctx.scale.n;
    // Marginal workloads enumerate (d choose 2)·c² queries; keep c modest.
    let c = if ctx.scale.tier == Tier::Full {
        DEFAULT_C
    } else {
        32
    };
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::main_four() {
        let eps_c = eps.clone();
        subplots.push((
            format!(
                "{fig}: {} (full 2-D marginals, MAE vs epsilon, c={c})",
                spec.name()
            ),
            eps.iter().map(|e| format!("{e:.1}")).collect(),
            Box::new(move |xi, _| {
                (
                    spec,
                    n,
                    DEFAULT_D,
                    c,
                    eps_c[xi],
                    WorkloadKind::Full2dMarginals,
                )
            }),
        ));
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "epsilon");
}

/// Fig. 12: full 2-D range workloads (ω = 0.5) vs ε.
pub fn full_ranges(ctx: &Ctx, fig: &str) {
    let eps = ctx.scale.eps_sweep();
    let n = ctx.scale.n;
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::main_four() {
        let eps_c = eps.clone();
        subplots.push((
            format!("{fig}: {} (full 2-D ranges, MAE vs epsilon)", spec.name()),
            eps.iter().map(|e| format!("{e:.1}")).collect(),
            Box::new(move |xi, _| {
                (
                    spec,
                    n,
                    DEFAULT_D,
                    DEFAULT_C,
                    eps_c[xi],
                    WorkloadKind::Full2dRanges {
                        omega: DEFAULT_OMEGA,
                    },
                )
            }),
        ));
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "epsilon");
}

/// Figs. 13–14: zero-count (ω = 0.3) / non-zero-count (ω = 0.7) queries at
/// high λ, d = 10.
pub fn count_extremes(ctx: &Ctx, fig: &str, zero: bool) {
    let lambdas: Vec<usize> = match ctx.scale.tier {
        Tier::Quick => vec![6, 8],
        _ => (6..=10).collect(),
    };
    let n = ctx.scale.n;
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::main_four() {
        let lambdas_c = lambdas.clone();
        let label = if zero { "0-count" } else { "non-0-count" };
        subplots.push((
            format!(
                "{fig}: {} ({label} queries, MAE vs lambda, d=10)",
                spec.name()
            ),
            lambdas.iter().map(|l| format!("{l}")).collect(),
            Box::new(move |xi, _| {
                let lambda = lambdas_c[xi];
                let kind = if zero {
                    WorkloadKind::ZeroCount { lambda, omega: 0.3 }
                } else {
                    WorkloadKind::NonZeroCount { lambda, omega: 0.7 }
                };
                (spec, n, 10, DEFAULT_C, DEFAULT_EPS, kind)
            }),
        ));
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "lambda");
}

/// Fig. 28: covariance sweep on the synthetic datasets.
pub fn covariance_sweep(ctx: &Ctx, fig: &str) {
    let eps = ctx.scale.eps_sweep();
    let n = ctx.scale.n;
    let covs = match ctx.scale.tier {
        Tier::Quick => vec![0.0, 0.8],
        _ => vec![0.0, 0.2, 0.6, 1.0],
    };
    let lambdas: Vec<usize> = match ctx.scale.tier {
        Tier::Quick => vec![2],
        _ => vec![2, 4, 6],
    };
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for laplace in [false, true] {
        for &cov in &covs {
            for &lambda in &lambdas {
                let spec = if laplace {
                    DatasetSpec::Laplace { rho: cov }
                } else {
                    DatasetSpec::Normal { rho: cov }
                };
                let eps_c = eps.clone();
                subplots.push((
                    format!("{fig}: {}, Cov={cov}, lambda={lambda}", spec.name()),
                    eps.iter().map(|e| format!("{e:.1}")).collect(),
                    Box::new(move |xi, _| {
                        (
                            spec,
                            n,
                            DEFAULT_D,
                            DEFAULT_C,
                            eps_c[xi],
                            WorkloadKind::Random {
                                lambda,
                                omega: DEFAULT_OMEGA,
                            },
                        )
                    }),
                ));
            }
        }
    }
    run_generic_sweep(ctx, fig, subplots, &Approach::six_without_hio(), "epsilon");
}

/// Fig. 8 / Appendix A.1: component-wise analysis (Phase-2 ablation).
pub fn components(ctx: &Ctx, fig: &str, lambdas: &[usize]) {
    let eps = ctx.scale.eps_sweep();
    let n = ctx.scale.n;
    let legend = [Approach::ITdg, Approach::IHdg, Approach::Tdg, Approach::Hdg];
    let mut subplots: Vec<(String, Vec<String>, CellFn)> = Vec::new();
    for spec in DatasetSpec::main_four() {
        for &lambda in lambdas {
            let eps_c = eps.clone();
            subplots.push((
                format!("{fig}: {}, lambda={lambda} (Phase-2 ablation)", spec.name()),
                eps.iter().map(|e| format!("{e:.1}")).collect(),
                Box::new(move |xi, _| {
                    (
                        spec,
                        n,
                        DEFAULT_D,
                        DEFAULT_C,
                        eps_c[xi],
                        WorkloadKind::Random {
                            lambda,
                            omega: DEFAULT_OMEGA,
                        },
                    )
                }),
            ));
        }
    }
    run_generic_sweep(ctx, fig, subplots, &legend, "epsilon");
}
