//! Fig. 15 / Appendix A.5: justifying the user split σ = n1/n.
//!
//! For each ε, HDG runs with σ swept from 0.1 to 0.9; the default
//! equal-population split σ0 = d/(d + (d choose 2)) should sit in the flat
//! optimum the paper reports (σ ∈ [0.2, 0.6]).

use super::{DEFAULT_C, DEFAULT_D, DEFAULT_OMEGA};
use crate::approach::Approach;
use crate::experiment::{Ctx, WorkloadKind};
use crate::report::{emit, Table};
use crate::scale::Tier;
use privmdr_data::DatasetSpec;

/// Runs the σ sweep.
pub fn run(ctx: &Ctx, fig: &str) {
    let sigmas: Vec<f64> = (1..=9).map(|i| 0.1 * i as f64).collect();
    let eps_rows: Vec<f64> = match ctx.scale.tier {
        Tier::Quick => vec![1.0],
        _ => vec![0.2, 0.6, 1.0, 1.4, 1.8],
    };
    let kind = WorkloadKind::Random {
        lambda: 2,
        omega: DEFAULT_OMEGA,
    };
    let mut tables = Vec::new();
    for spec in DatasetSpec::main_four() {
        let mut table = Table::new(
            format!("{fig}: {} (HDG MAE vs sigma = n1/n)", spec.name()),
            "sigma",
            sigmas.iter().map(|s| format!("{s:.1}")).collect(),
        );
        let cells: Vec<(f64, f64)> = eps_rows
            .iter()
            .flat_map(|&e| sigmas.iter().map(move |&s| (e, s)))
            .collect();
        let results = privmdr_util::par::par_map(&cells, |&(e, s)| {
            ctx.mae(
                spec,
                ctx.scale.n,
                DEFAULT_D,
                DEFAULT_C,
                &Approach::HdgSigma { sigma: s },
                e,
                kind,
            )
        });
        for (ei, &e) in eps_rows.iter().enumerate() {
            table.push_row(
                format!("eps={e:.1}"),
                results[ei * sigmas.len()..(ei + 1) * sigmas.len()].to_vec(),
            );
        }
        tables.push(table);
    }
    println!(
        "\n(default sigma0 = d/(d + C(d,2)) = {:.4} for d = {DEFAULT_D})",
        privmdr_grid::guideline::default_sigma(DEFAULT_D)
    );
    emit(fig, &tables);
}
