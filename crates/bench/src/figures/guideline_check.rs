//! Figs. 7 and 16: effectiveness of the granularity guideline.
//!
//! Every fixed `(g1, g2)` combination for `c = 64` is run as its own HDG
//! variant and compared against guideline-driven HDG across the ε sweep;
//! the guideline should track the best fixed combination everywhere.

use super::{DEFAULT_C, DEFAULT_OMEGA};
use crate::approach::Approach;
use crate::experiment::{Ctx, WorkloadKind};
use crate::report::{emit, Table};
use privmdr_data::DatasetSpec;

/// Runs the guideline verification at the given attribute counts
/// (`&[6]` for Fig. 7; `&[4, 8, 10]` for Fig. 16).
pub fn run(ctx: &Ctx, fig: &str, d_values: &[usize]) {
    let eps = ctx.scale.eps_sweep();
    let ladder = Approach::guideline_ladder();
    let kind = WorkloadKind::Random {
        lambda: 2,
        omega: DEFAULT_OMEGA,
    };
    let mut tables = Vec::new();
    for &d in d_values {
        for spec in DatasetSpec::main_four() {
            let mut table = Table::new(
                format!(
                    "{fig}: {}, d={d} (guideline vs fixed granularities)",
                    spec.name()
                ),
                "epsilon",
                eps.iter().map(|e| format!("{e:.1}")).collect(),
            );
            let cells: Vec<(Approach, f64)> = ladder
                .iter()
                .flat_map(|&a| eps.iter().map(move |&e| (a, e)))
                .collect();
            let results = privmdr_util::par::par_map(&cells, |&(a, e)| {
                ctx.mae(spec, ctx.scale.n, d, DEFAULT_C, &a, e, kind)
            });
            for (ai, a) in ladder.iter().enumerate() {
                table.push_row(
                    a.name(),
                    results[ai * eps.len()..(ai + 1) * eps.len()].to_vec(),
                );
            }
            // Regret diagnostic: guideline MAE / best fixed MAE per epsilon.
            let hdg_row = &results[(ladder.len() - 1) * eps.len()..];
            let mut regret = Vec::with_capacity(eps.len());
            for (ei, hdg) in hdg_row.iter().enumerate() {
                let best = (0..ladder.len() - 1)
                    .map(|ai| results[ai * eps.len() + ei].mean)
                    .fold(f64::INFINITY, f64::min);
                regret.push(privmdr_util::stats::Summary {
                    mean: hdg.mean / best.max(1e-12),
                    std_dev: 0.0,
                    min: 0.0,
                    max: 0.0,
                    count: hdg.count,
                });
            }
            table.push_row("guideline/best ratio", regret);
            tables.push(table);
        }
    }
    emit(fig, &tables);
}
