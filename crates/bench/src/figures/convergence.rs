//! Figs. 17–18 / Appendix A.6: convergence of Algorithms 1 and 2.
//!
//! * Algorithm 1: for each ε, fit HDG's post-processed grids, rebuild every
//!   pair's response matrix with a per-sweep observer, and report the mean
//!   total change per step across the `(d choose 2)` matrices.
//! * Algorithm 2: for each ε, fit an HDG model, split each λ=4 query into
//!   its six associated 2-D queries (answered through the public model),
//!   and trace the Weighted-Update change per step, averaged over queries.

use super::{DEFAULT_C, DEFAULT_D, DEFAULT_OMEGA};
use crate::experiment::{Ctx, WorkloadKind};
use crate::report::{emit, Table};
use crate::scale::Tier;
use privmdr_core::estimation::{weighted_update_observed, PairAnswer};
use privmdr_core::hdg::fit_hdg_grids;
use privmdr_core::{Hdg, Mechanism, MechanismConfig};
use privmdr_data::DatasetSpec;
use privmdr_grid::response_matrix::build_response_matrix_observed;
use privmdr_query::{Predicate, RangeQuery};
use privmdr_util::rng::derive_seed;
use privmdr_util::stats::Summary;

fn eps_rows(ctx: &Ctx) -> Vec<f64> {
    match ctx.scale.tier {
        Tier::Quick => vec![1.0],
        _ => vec![0.2, 0.6, 1.0, 1.4, 1.8],
    }
}

/// Fig. 17: Algorithm 1 (response matrix) convergence.
pub fn alg1(ctx: &Ctx, fig: &str) {
    let steps = 50usize;
    let mut tables = Vec::new();
    for spec in DatasetSpec::main_four() {
        let ds = ctx.dataset(spec, ctx.scale.n, DEFAULT_D, DEFAULT_C);
        let mut table = Table::new(
            format!("{fig}: {} (Algorithm 1 total change per step)", spec.name()),
            "step",
            (1..=steps).map(|s| s.to_string()).collect(),
        );
        for &eps in &eps_rows(ctx) {
            let seed = derive_seed(ctx.scale.seed, &[0xa191, (eps * 100.0) as u64]);
            let cfg = MechanismConfig::default();
            let (one_d, two_d) = fit_hdg_grids(&ds, eps, seed, &cfg).expect("HDG grids fit");
            // Average the change trace across all pairs.
            let mut acc = vec![0.0f64; steps];
            for grid in &two_d {
                let (j, k) = grid.attrs();
                let mut trace = vec![f64::NAN; steps];
                let mut obs = |step: usize, change: f64| {
                    if step - 1 < steps {
                        trace[step - 1] = change;
                    }
                };
                let _ = build_response_matrix_observed(
                    &one_d[j],
                    &one_d[k],
                    grid,
                    0.0, // run all `steps` sweeps for the full curve
                    steps,
                    Some(&mut obs),
                );
                for (a, t) in acc.iter_mut().zip(&trace) {
                    *a += if t.is_nan() { 0.0 } else { *t };
                }
            }
            let row: Vec<Summary> = acc
                .iter()
                .map(|&total| Summary {
                    mean: total / two_d.len() as f64,
                    std_dev: 0.0,
                    min: 0.0,
                    max: 0.0,
                    count: two_d.len(),
                })
                .collect();
            table.push_row(format!("eps={eps:.1}"), row);
        }
        tables.push(table);
    }
    emit(fig, &tables);
}

/// Fig. 18: Algorithm 2 (λ-D estimation) convergence at λ = 4.
pub fn alg2(ctx: &Ctx, fig: &str) {
    let steps = 100usize;
    let lambda = 4usize;
    let mut tables = Vec::new();
    for spec in DatasetSpec::main_four() {
        let ds = ctx.dataset(spec, ctx.scale.n, DEFAULT_D, DEFAULT_C);
        let wl = ctx.workload(
            spec,
            ctx.scale.n,
            DEFAULT_D,
            DEFAULT_C,
            WorkloadKind::Random {
                lambda,
                omega: DEFAULT_OMEGA,
            },
        );
        let mut table = Table::new(
            format!(
                "{fig}: {} (Algorithm 2 total change per step, lambda=4)",
                spec.name()
            ),
            "step",
            (1..=steps).map(|s| s.to_string()).collect(),
        );
        for &eps in &eps_rows(ctx) {
            let seed = derive_seed(ctx.scale.seed, &[0xa192, (eps * 100.0) as u64]);
            let model = Hdg::default().fit(&ds, eps, seed).expect("HDG fit");
            let mut acc = vec![0.0f64; steps];
            let mut counted = 0usize;
            for q in wl.0.iter().take(50) {
                // Split into the associated 2-D queries via the public API.
                let preds = q.predicates();
                let mut pairs = Vec::new();
                for i in 0..preds.len() {
                    for j in (i + 1)..preds.len() {
                        let q2 = RangeQuery::new(
                            vec![
                                Predicate {
                                    attr: preds[i].attr,
                                    lo: preds[i].lo,
                                    hi: preds[i].hi,
                                },
                                Predicate {
                                    attr: preds[j].attr,
                                    lo: preds[j].lo,
                                    hi: preds[j].hi,
                                },
                            ],
                            DEFAULT_C,
                        )
                        .expect("valid sub-query");
                        pairs.push(PairAnswer {
                            i,
                            j,
                            f: model.answer(&q2).clamp(0.0, 1.0),
                        });
                    }
                }
                let mut trace = vec![0.0f64; steps];
                let mut obs = |step: usize, change: f64| {
                    if step - 1 < steps {
                        trace[step - 1] = change;
                    }
                };
                let _ = weighted_update_observed(lambda, &pairs, 0.0, steps, Some(&mut obs));
                for (a, t) in acc.iter_mut().zip(&trace) {
                    *a += t;
                }
                counted += 1;
            }
            let row: Vec<Summary> = acc
                .iter()
                .map(|&total| Summary {
                    mean: total / counted.max(1) as f64,
                    std_dev: 0.0,
                    min: 0.0,
                    max: 0.0,
                    count: counted,
                })
                .collect();
            table.push_row(format!("eps={eps:.1}"), row);
        }
        tables.push(table);
    }
    emit(fig, &tables);
}
