//! Table 2: the recommended (g1, g2) granularities.
//!
//! Pure computation — no data, no noise. The unit test in
//! `privmdr-grid::guideline` asserts bit-exact agreement with the paper;
//! this runner regenerates the table for the README/EXPERIMENTS record.

use crate::report::{emit, Table};
use privmdr_grid::guideline::{choose_granularities, GuidelineParams};
use privmdr_util::stats::Summary;

/// Prints the full Table 2 grid.
pub fn run(fig: &str) {
    let eps: Vec<f64> = (1..=10).map(|i| 0.2 * i as f64).collect();
    let params = GuidelineParams::default();
    let rows: Vec<(usize, f64)> = (3..=10)
        .map(|d| (d, 6.0))
        .chain((0..=10).map(|i| (6usize, 5.0 + 0.2 * i as f64)))
        .collect();

    let mut table = Table::new(
        format!("{fig}: recommended (g1, g2), alpha1=0.7, alpha2=0.03, c=64"),
        "d, lg(n)",
        eps.iter().map(|e| format!("eps={e:.1}")).collect(),
    );
    // The Table type carries numeric summaries; encode g1*1000 + g2 so the
    // CSV stays machine-readable, and print a human-readable table too.
    let mut pretty = String::new();
    for &(d, lg_n) in &rows {
        let n = 10f64.powf(lg_n).round() as usize;
        let mut cells = Vec::new();
        let mut line = format!("| {d}, {lg_n:.1} |");
        for &e in &eps {
            let g = choose_granularities(n, d, e, 64, &params);
            line.push_str(&format!(" {},{} |", g.g1, g.g2));
            cells.push(Summary {
                mean: (g.g1 * 1000 + g.g2) as f64,
                std_dev: 0.0,
                min: g.g1 as f64,
                max: g.g2 as f64,
                count: 1,
            });
        }
        pretty.push_str(&line);
        pretty.push('\n');
        table.push_row(format!("d={d}, lg(n)={lg_n:.1}"), cells);
    }
    println!("\n### {fig} (human-readable)\n");
    println!(
        "| d, lg(n) |{}",
        eps.iter().map(|e| format!(" {e:.1} |")).collect::<String>()
    );
    println!("|---|{}", "---|".repeat(eps.len()));
    print!("{pretty}");
    emit(fig, &[table]);
}
