//! The mechanism variants appearing in the paper's figure legends.

use privmdr_core::{
    Calm, EstimatorKind, Hdg, HioMechanism, Lhio, Mechanism, MechanismConfig, Msw, Tdg, Uni,
};

/// A named mechanism variant (legend entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Approach {
    /// Uniform-guess benchmark.
    Uni,
    /// Multiplied Square Wave.
    Msw,
    /// CALM 2-D marginals.
    Calm,
    /// Full d-dimensional HIO.
    Hio,
    /// Low-dimensional HIO.
    Lhio,
    /// Two-Dimensional Grids.
    Tdg,
    /// Hybrid-Dimensional Grids (guideline granularities).
    Hdg,
    /// TDG without Phase 2 (Appendix A.1).
    ITdg,
    /// HDG without Phase 2 (Appendix A.1).
    IHdg,
    /// HDG pinned to fixed granularities (Figs. 7, 16).
    HdgFixed {
        /// 1-D granularity.
        g1: usize,
        /// 2-D granularity.
        g2: usize,
    },
    /// HDG with an overridden 1-D user fraction σ (Fig. 15 / A.5).
    HdgSigma {
        /// Fraction of users assigned to 1-D grids.
        sigma: f64,
    },
    /// HDG with the Appendix A.8 max-entropy λ-estimator (ablation).
    HdgMaxEnt,
}

impl Approach {
    /// Legend label.
    pub fn name(&self) -> String {
        match self {
            Approach::Uni => "Uni".into(),
            Approach::Msw => "MSW".into(),
            Approach::Calm => "CALM".into(),
            Approach::Hio => "HIO".into(),
            Approach::Lhio => "LHIO".into(),
            Approach::Tdg => "TDG".into(),
            Approach::Hdg => "HDG".into(),
            Approach::ITdg => "ITDG".into(),
            Approach::IHdg => "IHDG".into(),
            Approach::HdgFixed { g1, g2 } => format!("HDG({g1},{g2})"),
            Approach::HdgSigma { sigma } => format!("HDG(sigma={sigma})"),
            Approach::HdgMaxEnt => "HDG-MaxEnt".into(),
        }
    }

    /// Instantiates the mechanism.
    pub fn mechanism(&self) -> Box<dyn Mechanism + Send + Sync> {
        let base = MechanismConfig::default();
        match *self {
            Approach::Uni => Box::new(Uni),
            Approach::Msw => Box::new(Msw::new(base)),
            Approach::Calm => Box::new(Calm::new(base)),
            Approach::Hio => Box::new(HioMechanism::new(base)),
            Approach::Lhio => Box::new(Lhio::new(base)),
            Approach::Tdg => Box::new(Tdg::new(base)),
            Approach::Hdg => Box::new(Hdg::new(base)),
            Approach::ITdg => Box::new(Tdg::new(base.without_post_process())),
            Approach::IHdg => Box::new(Hdg::new(base.without_post_process())),
            Approach::HdgFixed { g1, g2 } => Box::new(Hdg::new(base.with_granularities(g1, g2))),
            Approach::HdgSigma { sigma } => Box::new(Hdg::new(base.with_sigma(sigma))),
            Approach::HdgMaxEnt => Box::new(Hdg::new(MechanismConfig {
                estimator: EstimatorKind::MaxEntropy,
                ..base
            })),
        }
    }

    /// The full Fig. 1 legend: all seven approaches.
    pub fn all_seven() -> Vec<Approach> {
        vec![
            Approach::Uni,
            Approach::Msw,
            Approach::Calm,
            Approach::Hio,
            Approach::Lhio,
            Approach::Tdg,
            Approach::Hdg,
        ]
    }

    /// The legend of figures that omit HIO (its MAE dwarfs the axis).
    pub fn six_without_hio() -> Vec<Approach> {
        vec![
            Approach::Uni,
            Approach::Msw,
            Approach::Calm,
            Approach::Lhio,
            Approach::Tdg,
            Approach::Hdg,
        ]
    }

    /// The Fig. 7/16 guideline-verification ladder of fixed granularities
    /// for `c = 64`, plus guideline HDG last.
    pub fn guideline_ladder() -> Vec<Approach> {
        let mut out: Vec<Approach> = [
            (4, 2),
            (8, 2),
            (8, 4),
            (16, 2),
            (16, 4),
            (16, 8),
            (32, 2),
            (32, 4),
            (32, 8),
            (32, 16),
        ]
        .iter()
        .map(|&(g1, g2)| Approach::HdgFixed { g1, g2 })
        .collect();
        out.push(Approach::Hdg);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = Approach::all_seven().iter().map(|a| a.name()).collect();
        names.extend(Approach::guideline_ladder().iter().map(|a| a.name()));
        names.push(Approach::ITdg.name());
        names.push(Approach::IHdg.name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            names.len() - 1,
            "only HDG appears twice (ladder)"
        );
    }

    #[test]
    fn every_variant_instantiates() {
        for a in Approach::all_seven() {
            let _ = a.mechanism();
        }
        let _ = Approach::HdgFixed { g1: 16, g2: 4 }.mechanism();
        let _ = Approach::HdgSigma { sigma: 0.3 }.mechanism();
        let _ = Approach::HdgMaxEnt.mechanism();
    }
}
