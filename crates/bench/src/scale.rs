//! Experiment scales.
//!
//! The paper's full setting (n = 10⁶ users, 10 repetitions, |Q| = 200)
//! takes hours across all figures; the default scale keeps every trend
//! while finishing in minutes, and `--quick` smoke-tests a figure in
//! seconds. All three run the same code paths.

/// Scale tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Smoke test: tiny population, 1–2 repetitions.
    Quick,
    /// Default: reduced population, trends intact.
    Default,
    /// The paper's full evaluation scale.
    Full,
}

/// Global experiment scale, parsed from CLI arguments.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Base number of users `n`.
    pub n: usize,
    /// Repetitions per cell (the paper uses 10).
    pub reps: u64,
    /// Random queries per workload (the paper uses 200).
    pub queries: usize,
    /// Master seed for everything.
    pub seed: u64,
    /// Which tier was selected.
    pub tier: Tier,
}

impl Scale {
    /// Smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            n: 40_000,
            reps: 2,
            queries: 40,
            seed: 0x9d72,
            tier: Tier::Quick,
        }
    }

    /// Default reduced scale.
    pub fn default_scale() -> Self {
        Scale {
            n: 200_000,
            reps: 3,
            queries: 100,
            seed: 0x9d72,
            tier: Tier::Default,
        }
    }

    /// The paper's scale.
    pub fn full() -> Self {
        Scale {
            n: 1_000_000,
            reps: 10,
            queries: 200,
            seed: 0x9d72,
            tier: Tier::Full,
        }
    }

    /// Parses `--quick`, `--full`, `--n N`, `--reps R`, `--queries Q`,
    /// `--seed S` from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale = if args.iter().any(|a| a == "--quick") {
            Scale::quick()
        } else if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::default_scale()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut grab = |target: &mut u64| {
                if let Some(v) = it.next().and_then(|s| s.parse::<u64>().ok()) {
                    *target = v;
                }
            };
            match a.as_str() {
                "--n" => {
                    let mut v = scale.n as u64;
                    grab(&mut v);
                    scale.n = v as usize;
                }
                "--reps" => grab(&mut scale.reps),
                "--queries" => {
                    let mut v = scale.queries as u64;
                    grab(&mut v);
                    scale.queries = v as usize;
                }
                "--seed" => grab(&mut scale.seed),
                _ => {}
            }
        }
        scale
    }

    /// The ε sweep used by most figures (0.2 to 2.0).
    pub fn eps_sweep(&self) -> Vec<f64> {
        match self.tier {
            Tier::Quick => vec![0.5, 1.0, 2.0],
            _ => (1..=10).map(|i| 0.2 * i as f64).collect(),
        }
    }

    /// The ω sweep of Fig. 2 (0.1 to 0.9).
    pub fn omega_sweep(&self) -> Vec<f64> {
        match self.tier {
            Tier::Quick => vec![0.3, 0.5, 0.7],
            _ => (1..=9).map(|i| 0.1 * i as f64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered() {
        assert!(Scale::quick().n < Scale::default_scale().n);
        assert!(Scale::default_scale().n < Scale::full().n);
        assert_eq!(Scale::full().reps, 10);
        assert_eq!(Scale::full().queries, 200);
    }

    #[test]
    fn sweeps_match_paper_at_full() {
        let s = Scale::full();
        assert_eq!(s.eps_sweep().len(), 10);
        assert!((s.eps_sweep()[0] - 0.2).abs() < 1e-12);
        assert!((s.eps_sweep()[9] - 2.0).abs() < 1e-12);
        assert_eq!(s.omega_sweep().len(), 9);
    }
}
