//! Result tables: markdown to stdout, CSV to `results/`.

use privmdr_util::stats::Summary;
use std::io::Write;
use std::path::Path;

/// One figure subplot: MAE series per approach over an x-axis sweep.
#[derive(Debug, Clone)]
pub struct Table {
    /// Subplot title, e.g. `"Fig 1(a) Ipums, lambda=2"`.
    pub title: String,
    /// x-axis name, e.g. `"epsilon"`.
    pub x_label: String,
    /// x-axis tick labels.
    pub x_values: Vec<String>,
    /// `(series name, one summary per x value)`.
    pub rows: Vec<(String, Vec<Summary>)>,
}

impl Table {
    /// Creates an empty table for the given sweep.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        x_values: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            x_values,
            rows: Vec::new(),
        }
    }

    /// Appends a series; its length must match the x-axis.
    pub fn push_row(&mut self, name: impl Into<String>, series: Vec<Summary>) {
        assert_eq!(series.len(), self.x_values.len(), "series length mismatch");
        self.rows.push((name.into(), series));
    }

    /// Renders the table as markdown (MAE means; `±std` when repetitions
    /// vary enough to matter).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for x in &self.x_values {
            out.push_str(&format!(" {x} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.x_values {
            out.push_str("---|");
        }
        out.push('\n');
        for (name, series) in &self.rows {
            out.push_str(&format!("| {name} |"));
            for s in series {
                out.push_str(&format!(" {} |", format_mae(s)));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the markdown rendering to stdout (locked + buffered).
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(self.to_markdown().as_bytes());
    }

    /// CSV rows: `title,series,x,mean,std,count`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("title,series,x,mae_mean,mae_std,reps\n");
        for (name, series) in &self.rows {
            for (x, s) in self.x_values.iter().zip(series) {
                out.push_str(&format!(
                    "{},{},{},{:.6e},{:.6e},{}\n",
                    csv_escape(&self.title),
                    csv_escape(name),
                    csv_escape(x),
                    s.mean,
                    s.std_dev,
                    s.count
                ));
            }
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Scientific-ish MAE formatting matching the paper's log-scale figures.
fn format_mae(s: &Summary) -> String {
    if s.count == 0 {
        return "-".into();
    }
    if s.mean == 0.0 {
        return "0".into();
    }
    format!("{:.3e}", s.mean)
}

/// Appends tables to `results/<file>.csv` (creating `results/`), then
/// prints them to stdout.
pub fn emit(file_stem: &str, tables: &[Table]) {
    for t in tables {
        t.print();
    }
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{file_stem}.csv"));
        let mut csv = String::new();
        for t in tables {
            csv.push_str(&t.to_csv());
        }
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warn: could not write {}: {e}", path.display());
        } else {
            println!("\n[wrote results/{file_stem}.csv]");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(mean: f64) -> Summary {
        Summary {
            mean,
            std_dev: 0.01,
            min: mean,
            max: mean,
            count: 3,
        }
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Fig X", "eps", vec!["0.5".into(), "1.0".into()]);
        t.push_row("HDG", vec![s(0.01), s(0.005)]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| eps | 0.5 | 1.0 |"));
        assert!(md.contains("| HDG | 1.000e-2 | 5.000e-3 |"));
    }

    #[test]
    fn csv_shape_and_escaping() {
        let mut t = Table::new("Fig, Y", "x", vec!["a".into()]);
        t.push_row("M", vec![s(0.5)]);
        let csv = t.to_csv();
        assert!(csv.starts_with("title,series,x,"));
        assert!(csv.contains("\"Fig, Y\",M,a,5.000000e-1,1.000000e-2,3"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_length_checked() {
        let mut t = Table::new("T", "x", vec!["a".into(), "b".into()]);
        t.push_row("M", vec![s(0.1)]);
    }
}
