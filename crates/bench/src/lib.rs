//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5 and the appendix).
//!
//! Each figure has a binary in `src/bin/` (e.g.
//! `cargo run --release -p privmdr-bench --bin fig01_vary_eps`); all share
//! the machinery here:
//!
//! * [`approach`] — the mechanism variants appearing in figure legends;
//! * [`scale`] — the `--quick` / default / `--full` experiment scales (the
//!   paper's full scale is n = 10⁶, 10 repetitions, |Q| = 200);
//! * [`experiment`] — cached datasets/workloads + parallel MAE measurement;
//! * [`report`] — markdown/CSV table emission;
//! * [`figures`] — one module per paper figure/table.
//!
//! Results are printed as markdown tables (one per subplot) and written as
//! CSV under `results/` for diffing against the paper.

pub mod approach;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod scale;

pub use approach::Approach;
pub use experiment::{Ctx, WorkloadKind};
pub use report::Table;
pub use scale::Scale;
