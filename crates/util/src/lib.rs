//! Shared substrates for the `privmdr` workspace.
//!
//! This crate holds the small, dependency-free building blocks every other
//! crate relies on:
//!
//! * [`hash`] — a seeded 64-bit mixing hash used as the universal hash family
//!   of the OLH frequency oracle.
//! * [`sampling`] — binomial/multinomial samplers and normal/exponential
//!   variates (the `rand` crate deliberately ships no distributions).
//! * [`stats`] — mean/std/percentile helpers used by the benchmark harness.
//! * [`linalg`] — a tiny dense Cholesky factorization for generating
//!   correlated multivariate samples.
//! * [`pow2`] — power-of-two rounding used by the granularity guideline.
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible from a single master seed.
//! * [`par`] — scoped-thread work distribution (`par_map`) and contiguous
//!   slice sharding (`split_chunks`), shared by the bench harness and the
//!   protocol's report-ingestion engine.
//! * [`sync`] — poison-tolerant locking for deterministic caches, shared
//!   by the HDG response-matrix cache and the serving tier's answer cache.

pub mod hash;
pub mod linalg;
pub mod par;
pub mod pow2;
pub mod rng;
pub mod sampling;
pub mod stats;
pub mod sync;

pub use hash::mix64;
pub use pow2::{closest_pow2, is_pow2};
pub use rng::derive_seed;
pub use sync::lock_unpoisoned;
