//! Minimal dense linear algebra: Cholesky factorization of small SPD
//! matrices.
//!
//! The dataset generators need correlated Gaussian vectors with an
//! equicorrelation covariance `Σ = (1-ρ)I + ρJ` for `d <= 10`; a textbook
//! O(d³) Cholesky is all that requires.

/// Row-major square matrix of fixed dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    dim: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Matrix {
            dim,
            data: vec![0.0; dim * dim],
        }
    }

    /// Equicorrelation matrix: 1 on the diagonal, `rho` elsewhere.
    ///
    /// Positive definite for `rho` in `(-1/(d-1), 1)`.
    pub fn equicorrelation(dim: usize, rho: f64) -> Self {
        let mut m = Matrix::zeros(dim);
        for i in 0..dim {
            for j in 0..dim {
                m[(i, j)] = if i == j { 1.0 } else { rho };
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Cholesky factor `L` with `L Lᵀ = self`, or `None` if the matrix is not
    /// positive definite (within a small tolerance).
    pub fn cholesky(&self) -> Option<Matrix> {
        let d = self.dim;
        let mut l = Matrix::zeros(d);
        for i in 0..d {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }

    /// Computes `self * v` for a lower-triangular `self` (used to color
    /// i.i.d. Gaussian vectors), writing into `out`.
    pub fn lower_mul_vec(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(v.len(), self.dim);
        debug_assert_eq!(out.len(), self.dim);
        for i in 0..self.dim {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.dim + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.dim + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_reconstructs() {
        for rho in [0.0, 0.2, 0.8, 0.99] {
            let d = 6;
            let m = Matrix::equicorrelation(d, rho);
            let l = m.cholesky().expect("SPD");
            // L L^T == m
            for i in 0..d {
                for j in 0..d {
                    let mut acc = 0.0;
                    for k in 0..d {
                        acc += l[(i, k)] * l[(j, k)];
                    }
                    assert!((acc - m[(i, j)]).abs() < 1e-10, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        // rho = 1 with d >= 2 is only positive semi-definite.
        let m = Matrix::equicorrelation(3, 1.0);
        assert!(m.cholesky().is_none());
        // Strongly negative equicorrelation is indefinite for d=4.
        let m = Matrix::equicorrelation(4, -0.5);
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn lower_mul_vec_works() {
        let mut l = Matrix::zeros(2);
        l[(0, 0)] = 2.0;
        l[(1, 0)] = 1.0;
        l[(1, 1)] = 3.0;
        let mut out = [0.0; 2];
        l.lower_mul_vec(&[1.0, 1.0], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }
}
