//! Summary statistics used by tests and the benchmark harness.

/// Mean of a slice; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Mean and standard deviation of a set of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub count: usize,
}

impl Summary {
    /// Summarizes a slice of measurements.
    pub fn of(xs: &[f64]) -> Self {
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        if xs.is_empty() {
            min = 0.0;
            max = 0.0;
        }
        Summary {
            mean: mean(xs),
            std_dev: std_dev(xs),
            min,
            max,
            count: xs.len(),
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` used for error-distribution figures
/// (paper Figs. 9–10).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation; values outside the range clamp to the end bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// `(bucket_center, count)` rows for reporting.
    pub fn rows(&self) -> Vec<(f64, usize)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn summary_extremes() {
        let s = Summary::of(&[1.0, -3.0, 2.0]);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.1); // bucket 0
        h.add(0.30); // bucket 1
        h.add(0.99); // bucket 3
        h.add(-5.0); // clamps to 0
        h.add(7.0); // clamps to 3
        assert_eq!(h.counts(), &[2, 1, 0, 2]);
        let rows = h.rows();
        assert!((rows[0].0 - 0.125).abs() < 1e-12);
        assert_eq!(rows[3].1, 2);
    }
}
