//! Deterministic seed derivation.
//!
//! Every stochastic component in the workspace (dataset synthesis, user
//! perturbation, workload generation, repeat indices) draws its seed from a
//! master seed through [`derive_seed`], so that any experiment row can be
//! reproduced exactly from `(master_seed, labels...)`.

use crate::hash::mix64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a parent seed and a stream of labels.
///
/// The derivation is a chained SplitMix64 mix, which is enough to decorrelate
/// sibling streams (each label position is pre-multiplied by a distinct odd
/// constant before mixing).
pub fn derive_seed(parent: u64, labels: &[u64]) -> u64 {
    let mut s = mix64(parent ^ 0x5851_F42D_4C95_7F2D);
    for (i, &l) in labels.iter().enumerate() {
        s = mix64(s ^ l.wrapping_mul(0x2545_F491_4F6C_DD1D ^ (i as u64) << 1));
    }
    s
}

/// Convenience: a seeded [`StdRng`] derived from `(parent, labels)`.
pub fn derive_rng(parent: u64, labels: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive_seed(parent, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(1, &[2, 3]), derive_seed(1, &[2, 3]));
    }

    #[test]
    fn labels_matter() {
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(1, &[3, 2]));
        assert_ne!(derive_seed(1, &[2]), derive_seed(1, &[2, 0]));
        assert_ne!(derive_seed(1, &[2]), derive_seed(2, &[2]));
    }

    #[test]
    fn sibling_streams_decorrelate() {
        use rand::RngExt;
        let mut a = derive_rng(7, &[0]);
        let mut b = derive_rng(7, &[1]);
        let mut same = 0;
        for _ in 0..1000 {
            if a.random::<u64>() == b.random::<u64>() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }
}
