//! Poison-tolerant locking for deterministic shared state.
//!
//! Several hot read paths in the workspace share a `Mutex`-guarded map
//! whose entries are *deterministic*: whichever thread computes an entry
//! stores the same bits any other thread would have (the HDG response-
//! matrix cache, the serving tier's answer cache). For such maps a
//! poisoned lock carries no information — the panicking thread cannot
//! have left a half-wrong value behind, because inserts are the only
//! mutation and `HashMap::insert` either completes or unwinds without
//! publishing the entry. Propagating the poison would instead turn one
//! caught panic in one request thread into a permanent denial of service
//! for every later reader.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Only use this for state that stays valid across a panic — e.g. maps of
/// deterministic, insert-only entries where a lost insert is merely a
/// cache miss. State with multi-step invariants should keep the default
/// poisoning behavior.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[test]
    fn recovers_a_lock_poisoned_by_a_panicking_holder() {
        let cache: Mutex<HashMap<u32, u64>> = Mutex::new(HashMap::new());
        lock_unpoisoned(&cache).insert(1, 10);

        // A thread panics while holding the guard, poisoning the mutex.
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let mut guard = cache.lock().unwrap();
                guard.insert(2, 20);
                panic!("simulated query-thread panic while holding the lock");
            });
            assert!(handle.join().is_err());
        });
        assert!(cache.lock().is_err(), "the lock should be poisoned");

        // The recovering accessor still reads and writes the map; the
        // completed inserts are intact.
        let mut guard = lock_unpoisoned(&cache);
        assert_eq!(guard.get(&1), Some(&10));
        assert_eq!(guard.get(&2), Some(&20));
        guard.insert(3, 30);
        drop(guard);
        assert_eq!(lock_unpoisoned(&cache).len(), 3);
    }
}
