//! Power-of-two helpers for the granularity guideline (paper §4.6).
//!
//! The guideline derives real-valued granularities and then takes "the power
//! of two closest to the derived value" so that grid cells evenly divide the
//! (power-of-two) attribute domain.

/// Whether `x` is a power of two.
#[inline]
pub fn is_pow2(x: usize) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// The power of two closest (in linear distance) to `x`.
///
/// Ties between the two bracketing powers resolve downward, matching the
/// paper's Table 2. Values below 1 round to 1.
pub fn closest_pow2(x: f64) -> usize {
    if !x.is_finite() || x <= 1.0 {
        return 1;
    }
    let lo = 1usize << (x.log2().floor() as u32).min(62);
    let hi = lo.saturating_mul(2);
    if x - lo as f64 <= hi as f64 - x {
        lo
    } else {
        hi
    }
}

/// Clamps a derived granularity to `[min_g, c]` after power-of-two rounding.
///
/// The paper sets granularities to `c` when the derived value exceeds the
/// domain, and never uses a granularity below 2 (Table 2's smallest entry).
pub fn granularity_from(x: f64, min_g: usize, c: usize) -> usize {
    debug_assert!(is_pow2(c) && is_pow2(min_g));
    closest_pow2(x).clamp(min_g, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_pow2_basics() {
        assert!(!is_pow2(0));
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(!is_pow2(3));
        assert!(is_pow2(1024));
        assert!(!is_pow2(1000));
    }

    #[test]
    fn closest_rounds_linearly() {
        // 23.3 is closer to 16 (7.3 away) than 32 (8.7 away) — the paper's
        // Table 2 cell (d=6, n=1e6, eps=1.0) depends on this convention.
        assert_eq!(closest_pow2(23.3), 16);
        assert_eq!(closest_pow2(25.0), 32);
        assert_eq!(closest_pow2(24.0), 16); // tie resolves down
        assert_eq!(closest_pow2(3.0), 2); // tie resolves down
        assert_eq!(closest_pow2(3.1), 4);
        assert_eq!(closest_pow2(1.4), 1);
        assert_eq!(closest_pow2(0.2), 1);
    }

    #[test]
    fn exact_powers_are_fixed_points() {
        for k in 0..20 {
            let p = 1usize << k;
            assert_eq!(closest_pow2(p as f64), p);
        }
    }

    #[test]
    fn granularity_clamps() {
        assert_eq!(granularity_from(0.9, 2, 64), 2);
        assert_eq!(granularity_from(500.0, 2, 64), 64);
        assert_eq!(granularity_from(23.3, 2, 64), 16);
        assert_eq!(granularity_from(23.3, 2, 8), 8);
    }
}
