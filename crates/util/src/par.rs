//! Minimal scoped-thread work distribution (no external thread pool).
//!
//! Two primitives cover every parallel path in the workspace:
//!
//! * [`par_map`] — apply a function to every item of a slice, preserving
//!   order, with work claimed through an atomic cursor so uneven item costs
//!   balance naturally. Used by the bench harness to sweep experiment cells
//!   and by the protocol collector to process report shards.
//! * [`split_chunks`] — deterministic near-equal partition of a slice into
//!   contiguous chunks, the sharding layout of the report-ingestion engine
//!   (contiguity keeps each shard's pass cache-friendly and makes the
//!   serial/sharded equivalence argument a statement about addition only).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on `available_parallelism` threads, preserving
/// order. Items are claimed through an atomic cursor, so uneven cell costs
/// (HIO vs Uni) balance naturally.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let threads = threads.min(items.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slot_ptr = SlotVec(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            let slot_ptr = &slot_ptr;
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                // SAFETY: each index is claimed by exactly one thread (the
                // atomic cursor hands out unique values) and `slots` outlives
                // the scope, so this write is exclusive and in-bounds.
                unsafe { *slot_ptr.0.add(idx) = Some(r) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot written"))
        .collect()
}

/// Splits `items` into at most `parts` contiguous chunks whose lengths
/// differ by at most one, dropping empty tails. Every item appears exactly
/// once, in order, so folding the chunks reproduces a serial pass exactly
/// for any order-insensitive accumulation.
pub fn split_chunks<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.max(1).min(items.len().max(1));
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

/// Send/Sync wrapper for the raw slot pointer; safe because slot indices are
/// partitioned by the atomic cursor (see SAFETY above).
struct SlotVec<R>(*mut Option<R>);
unsafe impl<R: Send> Send for SlotVec<R> {}
unsafe impl<R: Send> Sync for SlotVec<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            // Simulate uneven costs.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc.wrapping_add(x)
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn chunks_cover_in_order_and_balance() {
        let items: Vec<u32> = (0..13).collect();
        for parts in 1..=15 {
            let chunks = split_chunks(&items, parts);
            assert!(chunks.len() <= parts);
            assert!(chunks.iter().all(|c| !c.is_empty()));
            let flat: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "parts = {parts}");
            let (min, max) = (
                chunks.iter().map(|c| c.len()).min().unwrap(),
                chunks.iter().map(|c| c.len()).max().unwrap(),
            );
            assert!(max - min <= 1, "unbalanced at parts = {parts}");
        }
    }

    #[test]
    fn chunks_of_empty_slice() {
        let none: Vec<u8> = vec![];
        assert!(split_chunks(&none, 4).is_empty());
    }
}
