//! Seeded 64-bit mixing hash used as the OLH universal hash family.
//!
//! OLH requires a family of hash functions `H_s : [c] -> [c']` indexed by a
//! per-user seed `s`. Any well-mixing keyed integer hash works; we use the
//! SplitMix64 finalizer (Stafford's Mix13 variant), the same construction
//! used by `rand`'s seeding and by xxHash-style avalanche steps. It passes
//! avalanche tests and costs ~2 ns per evaluation, which matters because
//! exact OLH aggregation evaluates it `n_users × domain` times.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline(always)]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Odd multiplier decorrelating `value` from `seed` before mixing, so that
/// neither argument can cancel the other.
const VALUE_MULT: u64 = 0xA24B_AED4_963E_E407;

/// The value half of the hash input: `v · K`, hoistable out of any loop
/// that holds `value` fixed while seeds vary (the batch support kernel).
#[inline(always)]
pub fn premix_value(value: u64) -> u64 {
    value.wrapping_mul(VALUE_MULT)
}

/// Multiply-shift reduction of a mixed word onto `0..domain`: unbiased
/// enough for `domain << 2^32` and far cheaper than a modulo. `domain` in
/// OLH is `c' = eᵋ + 1`, i.e. tiny.
#[inline(always)]
fn reduce_to_domain(h: u64, domain: u64) -> u64 {
    ((h >> 32).wrapping_mul(domain)) >> 32
}

/// Keyed hash of `value` under seed `seed`, mapped uniformly onto `0..domain`.
///
/// The (seed, value) pair is combined with distinct odd multipliers before
/// mixing so that neither argument can cancel the other.
#[inline(always)]
pub fn hash_to_domain(seed: u64, value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    reduce_to_domain(mix64(seed ^ premix_value(value)), domain)
}

/// Batched support-count primitive — the transposed inner loop of exact OLH
/// aggregation. For a fixed `value`, counts how many `(seed, y)` pairs
/// satisfy `hash_to_domain(seed, value, domain) == y`.
///
/// Compared with evaluating [`hash_to_domain`] per report, this hoists the
/// `value · K` premix out of the loop, keeps the count in register
/// accumulators instead of read-modify-writing a memory counter per report,
/// and replaces the (badly predicted, ~`1/c'`-taken) match branch with a
/// branchless `(h == y) as u64` add. The ×4 unroll runs four independent
/// mix chains so the multiply latency overlaps. Bit-identical to the scalar
/// path by construction: the same `mix64`/reduction on the same inputs,
/// folded with exact `u64` adds.
#[inline]
pub fn support_count(pairs: &[(u64, u64)], value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    let mv = premix_value(value);
    let (mut a0, mut a1, mut a2, mut a3) = (0u64, 0u64, 0u64, 0u64);
    let mut quads = pairs.chunks_exact(4);
    for q in quads.by_ref() {
        a0 += u64::from(reduce_to_domain(mix64(q[0].0 ^ mv), domain) == q[0].1);
        a1 += u64::from(reduce_to_domain(mix64(q[1].0 ^ mv), domain) == q[1].1);
        a2 += u64::from(reduce_to_domain(mix64(q[2].0 ^ mv), domain) == q[2].1);
        a3 += u64::from(reduce_to_domain(mix64(q[3].0 ^ mv), domain) == q[3].1);
    }
    for &(seed, y) in quads.remainder() {
        a0 += u64::from(reduce_to_domain(mix64(seed ^ mv), domain) == y);
    }
    (a0 + a1) + (a2 + a3)
}

/// A member of the OLH hash family: hashes `[c] -> [c']` under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededHash {
    seed: u64,
    domain: u64,
}

impl SeededHash {
    /// Creates the hash function with the given seed and output domain `c'`.
    #[inline]
    pub fn new(seed: u64, domain: usize) -> Self {
        assert!(
            domain >= 2,
            "hash output domain must have at least 2 values"
        );
        Self {
            seed,
            domain: domain as u64,
        }
    }

    /// The per-user seed identifying this family member.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The output domain size `c'`.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain as usize
    }

    /// Hashes `value` into `0..c'`.
    #[inline(always)]
    pub fn hash(&self, value: usize) -> usize {
        hash_to_domain(self.seed, value as u64, self.domain) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_sample() {
        // A bijection cannot collide; sample a few million inputs.
        let mut seen = std::collections::HashSet::with_capacity(1 << 16);
        for i in 0..(1u64 << 16) {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_stays_in_domain() {
        for domain in [2u64, 3, 7, 16, 100] {
            for v in 0..1000u64 {
                let h = hash_to_domain(12345, v, domain);
                assert!(h < domain);
            }
        }
    }

    #[test]
    fn hash_is_deterministic_per_seed() {
        let h1 = SeededHash::new(42, 17);
        let h2 = SeededHash::new(42, 17);
        let h3 = SeededHash::new(43, 17);
        let mut differs = false;
        for v in 0..100 {
            assert_eq!(h1.hash(v), h2.hash(v));
            differs |= h1.hash(v) != h3.hash(v);
        }
        assert!(differs, "different seeds must give different functions");
    }

    #[test]
    fn hash_is_roughly_uniform() {
        // Chi-square style sanity check: hashing 0..n under one seed should
        // fill c' buckets roughly evenly.
        let domain = 8usize;
        let n = 80_000usize;
        let mut counts = vec![0usize; domain];
        let h = SeededHash::new(7, domain);
        for v in 0..n {
            counts[h.hash(v)] += 1;
        }
        let expected = n as f64 / domain as f64;
        for &cnt in &counts {
            let rel = (cnt as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket deviates {rel} from uniform");
        }
    }

    #[test]
    fn support_count_matches_scalar_hash_exactly() {
        // Every unroll phase (remainders 0..3) against the scalar path.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 64, 65, 66, 67] {
            let pairs: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (mix64(i), mix64(i ^ 0xBEEF) % 5))
                .collect();
            for domain in [2u64, 3, 4, 8] {
                for value in 0..16u64 {
                    let manual = pairs
                        .iter()
                        .filter(|&&(s, y)| hash_to_domain(s, value, domain) == y)
                        .count() as u64;
                    assert_eq!(
                        support_count(&pairs, value, domain),
                        manual,
                        "n={n} domain={domain} value={value}"
                    );
                }
            }
        }
    }

    #[test]
    fn premix_composes_with_hash() {
        // hash_to_domain is exactly mix64(seed ^ premix) reduced; the batch
        // kernel relies on this decomposition.
        for seed in [0u64, 1, 42, u64::MAX] {
            for value in 0..32u64 {
                let direct = hash_to_domain(seed, value, 7);
                let via_premix = ((mix64(seed ^ premix_value(value)) >> 32).wrapping_mul(7)) >> 32;
                assert_eq!(direct, via_premix);
            }
        }
    }

    #[test]
    fn pairwise_collision_rate_is_near_one_over_domain() {
        // For OLH's unbiasedness the family must behave like a universal
        // family: Pr_s[H_s(v) = H_s(w)] ~ 1/c' for v != w.
        let domain = 8usize;
        let trials = 40_000u64;
        let (v, w) = (3usize, 11usize);
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = SeededHash::new(mix64(seed), domain);
            if h.hash(v) == h.hash(w) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expected = 1.0 / domain as f64;
        assert!(
            (rate - expected).abs() < 0.01,
            "collision rate {rate} far from {expected}"
        );
    }
}
