//! Seeded 64-bit mixing hash used as the OLH universal hash family.
//!
//! OLH requires a family of hash functions `H_s : [c] -> [c']` indexed by a
//! per-user seed `s`. Any well-mixing keyed integer hash works; we use the
//! SplitMix64 finalizer (Stafford's Mix13 variant), the same construction
//! used by `rand`'s seeding and by xxHash-style avalanche steps. It passes
//! avalanche tests and costs ~2 ns per evaluation, which matters because
//! exact OLH aggregation evaluates it `n_users × domain` times.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline(always)]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Odd multiplier decorrelating `value` from `seed` before mixing, so that
/// neither argument can cancel the other.
const VALUE_MULT: u64 = 0xA24B_AED4_963E_E407;

/// The value half of the hash input: `v · K`, hoistable out of any loop
/// that holds `value` fixed while seeds vary (the batch support kernel).
#[inline(always)]
pub fn premix_value(value: u64) -> u64 {
    value.wrapping_mul(VALUE_MULT)
}

/// Multiply-shift reduction of a mixed word onto `0..domain`: unbiased
/// enough for `domain << 2^32` and far cheaper than a modulo. `domain` in
/// OLH is `c' = eᵋ + 1`, i.e. tiny.
#[inline(always)]
fn reduce_to_domain(h: u64, domain: u64) -> u64 {
    ((h >> 32).wrapping_mul(domain)) >> 32
}

/// Keyed hash of `value` under seed `seed`, mapped uniformly onto `0..domain`.
///
/// The (seed, value) pair is combined with distinct odd multipliers before
/// mixing so that neither argument can cancel the other.
#[inline(always)]
pub fn hash_to_domain(seed: u64, value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    reduce_to_domain(mix64(seed ^ premix_value(value)), domain)
}

/// Batched support-count primitive — the transposed inner loop of exact OLH
/// aggregation, scalar reference form. For a fixed `value`, counts how many
/// `(seed, y)` pairs satisfy `hash_to_domain(seed, value, domain) == y`.
///
/// Compared with evaluating [`hash_to_domain`] per report, this hoists the
/// `value · K` premix out of the loop, keeps the count in register
/// accumulators instead of read-modify-writing a memory counter per report,
/// and replaces the (badly predicted, ~`1/c'`-taken) match branch with a
/// branchless `(h == y) as u64` add. The ×4 unroll runs four independent
/// mix chains so the multiply latency overlaps. Bit-identical to the scalar
/// path by construction: the same `mix64`/reduction on the same inputs,
/// folded with exact `u64` adds.
///
/// This is the *reference* kernel the lane-parallel production kernel
/// ([`support_count_lanes`]) is proven bit-identical to; hot paths should
/// call that one instead.
#[inline]
pub fn support_count(pairs: &[(u64, u64)], value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    let mv = premix_value(value);
    let (mut a0, mut a1, mut a2, mut a3) = (0u64, 0u64, 0u64, 0u64);
    let mut quads = pairs.chunks_exact(4);
    for q in quads.by_ref() {
        a0 += u64::from(reduce_to_domain(mix64(q[0].0 ^ mv), domain) == q[0].1);
        a1 += u64::from(reduce_to_domain(mix64(q[1].0 ^ mv), domain) == q[1].1);
        a2 += u64::from(reduce_to_domain(mix64(q[2].0 ^ mv), domain) == q[2].1);
        a3 += u64::from(reduce_to_domain(mix64(q[3].0 ^ mv), domain) == q[3].1);
    }
    for &(seed, y) in quads.remainder() {
        a0 += u64::from(reduce_to_domain(mix64(seed ^ mv), domain) == y);
    }
    (a0 + a1) + (a2 + a3)
}

/// Lane width of the portable lane-parallel kernel: 8 independent mix
/// chains per iteration, wide enough for the compiler to autovectorize to
/// two AVX2 vectors (or one AVX-512 vector) of `u64` lanes.
pub const SUPPORT_LANES: usize = 8;

/// Which implementation [`support_count_lanes`] dispatches to on this
/// machine. Detected once at first use and cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Explicit `core::arch::x86_64` AVX-512 path: 8 mix chains per 512-bit
    /// vector with native 64-bit lane multiplies (`_mm512_mullo_epi64`,
    /// hence the AVX-512DQ requirement alongside AVX-512F).
    Avx512,
    /// Explicit `core::arch::x86_64` AVX2 path: 4 mix chains per 256-bit
    /// vector, 64-bit multiplies composed from `_mm256_mul_epu32` partials.
    Avx2,
    /// Portable fixed-width-lane path ([`SUPPORT_LANES`] scalar chains
    /// written for autovectorization).
    Portable,
}

impl KernelBackend {
    /// Stable lowercase name, for feature-detect log lines and benchmarks.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Portable => "portable",
        }
    }
}

/// The support-kernel backend selected for this process: AVX-512 when the
/// CPU reports F+DQ, else AVX2 when present (each checked once via
/// `is_x86_feature_detected!` and cached), the portable lane kernel
/// otherwise. Selection never changes after the first call.
pub fn kernel_backend() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static BACKEND: OnceLock<KernelBackend> = OnceLock::new();
        *BACKEND.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
            {
                KernelBackend::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                KernelBackend::Avx2
            } else {
                KernelBackend::Portable
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        KernelBackend::Portable
    }
}

/// Lane-parallel form of [`support_count`] — the production kernel.
///
/// Dispatches once-per-process (see [`kernel_backend`]) to the explicit
/// AVX-512 or AVX2 path on x86-64 machines that have them, and to the
/// portable [`SUPPORT_LANES`]-chain kernel everywhere else. All paths
/// evaluate the *same* `mix64` and multiply-shift reduction on the same
/// inputs and fold the per-pair `0/1` outcomes with exact `u64` adds —
/// addition commutes, so the result is **bit-identical** to the scalar
/// reference for every input, including every lane remainder and the empty
/// batch. Property tests in `crates/util/tests/kernel_prop.rs` pin this
/// down.
#[inline]
pub fn support_count_lanes(pairs: &[(u64, u64)], value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    let mv = premix_value(value);
    #[cfg(target_arch = "x86_64")]
    match kernel_backend() {
        // SAFETY: each SIMD backend is only ever selected after
        // `is_x86_feature_detected!` confirmed its features on this CPU.
        KernelBackend::Avx512 => {
            return unsafe { avx512::support_count_premixed(pairs, mv, domain) }
        }
        KernelBackend::Avx2 => return unsafe { avx2::support_count_premixed(pairs, mv, domain) },
        KernelBackend::Portable => {}
    }
    support_count_premixed_portable(pairs, mv, domain)
}

/// Structure-of-arrays form of [`support_count_lanes`]: the same count
/// over parallel `seeds`/`ys` slices (`seeds[i]` paired with `ys[i]`).
///
/// This is the form the OLH block loop feeds: the block is transposed to
/// SoA once, then swept `cells` times, so the SIMD backends fill all
/// lanes with two straight vector loads instead of per-field gathers —
/// the gather cost would otherwise dominate the whole kernel. Dispatch
/// and the bit-identity contract are exactly [`support_count_lanes`]'s.
///
/// Both slices must have the same length.
#[inline]
pub fn support_count_lanes_soa(seeds: &[u64], ys: &[u64], value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    assert_eq!(seeds.len(), ys.len(), "SoA slices must pair up");
    let mv = premix_value(value);
    #[cfg(target_arch = "x86_64")]
    match kernel_backend() {
        // SAFETY: each SIMD backend is only ever selected after
        // `is_x86_feature_detected!` confirmed its features on this CPU.
        KernelBackend::Avx512 => {
            return unsafe { avx512::support_count_premixed_soa(seeds, ys, mv, domain) }
        }
        KernelBackend::Avx2 => {
            return unsafe { avx2::support_count_premixed_soa(seeds, ys, mv, domain) }
        }
        KernelBackend::Portable => {}
    }
    support_count_premixed_portable_soa(seeds, ys, mv, domain)
}

/// Portable lane kernel, exposed so the equivalence tests can exercise it
/// even on machines where dispatch picks a SIMD backend. Bit-identical to
/// [`support_count`].
pub fn support_count_portable(pairs: &[(u64, u64)], value: u64, domain: u64) -> u64 {
    debug_assert!(domain > 0);
    support_count_premixed_portable(pairs, premix_value(value), domain)
}

/// Explicit AVX2 kernel, exposed so the equivalence tests can exercise it
/// directly; `None` when the CPU lacks AVX2. Bit-identical to
/// [`support_count`].
#[cfg(target_arch = "x86_64")]
pub fn support_count_avx2(pairs: &[(u64, u64)], value: u64, domain: u64) -> Option<u64> {
    debug_assert!(domain > 0);
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was just verified.
        Some(unsafe { avx2::support_count_premixed(pairs, premix_value(value), domain) })
    } else {
        None
    }
}

/// Explicit AVX-512 kernel, exposed so the equivalence tests can exercise
/// it directly; `None` when the CPU lacks AVX-512F/DQ. Bit-identical to
/// [`support_count`].
#[cfg(target_arch = "x86_64")]
pub fn support_count_avx512(pairs: &[(u64, u64)], value: u64, domain: u64) -> Option<u64> {
    debug_assert!(domain > 0);
    if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
    {
        // SAFETY: AVX-512F and AVX-512DQ presence was just verified.
        Some(unsafe { avx512::support_count_premixed(pairs, premix_value(value), domain) })
    } else {
        None
    }
}

/// The portable lane kernel body: [`SUPPORT_LANES`] independent accumulator
/// chains over `chunks_exact(SUPPORT_LANES)`, scalar tail. Written as a
/// fixed-width array sweep so LLVM autovectorizes the whole iteration
/// (loads, mix, reduce, compare, add) without any target-specific code.
#[inline]
fn support_count_premixed_portable(pairs: &[(u64, u64)], mv: u64, domain: u64) -> u64 {
    let mut lanes = [0u64; SUPPORT_LANES];
    let mut chunks = pairs.chunks_exact(SUPPORT_LANES);
    for chunk in chunks.by_ref() {
        for (acc, &(seed, y)) in lanes.iter_mut().zip(chunk) {
            *acc += u64::from(reduce_to_domain(mix64(seed ^ mv), domain) == y);
        }
    }
    let mut total: u64 = lanes.iter().sum();
    for &(seed, y) in chunks.remainder() {
        total += u64::from(reduce_to_domain(mix64(seed ^ mv), domain) == y);
    }
    total
}

/// SoA twin of [`support_count_premixed_portable`]: the same
/// [`SUPPORT_LANES`]-chain sweep over parallel slices.
#[inline]
fn support_count_premixed_portable_soa(seeds: &[u64], ys: &[u64], mv: u64, domain: u64) -> u64 {
    let mut lanes = [0u64; SUPPORT_LANES];
    let mut seed_chunks = seeds.chunks_exact(SUPPORT_LANES);
    let mut y_chunks = ys.chunks_exact(SUPPORT_LANES);
    for (sc, yc) in seed_chunks.by_ref().zip(y_chunks.by_ref()) {
        for ((acc, &seed), &y) in lanes.iter_mut().zip(sc).zip(yc) {
            *acc += u64::from(reduce_to_domain(mix64(seed ^ mv), domain) == y);
        }
    }
    let mut total: u64 = lanes.iter().sum();
    for (&seed, &y) in seed_chunks.remainder().iter().zip(y_chunks.remainder()) {
        total += u64::from(reduce_to_domain(mix64(seed ^ mv), domain) == y);
    }
    total
}

/// Explicit AVX2 support kernel: 4 independent mix chains per 256-bit
/// vector of `u64` lanes.
///
/// AVX2 has no 64×64-bit multiply, so the `mix64` multiplies (and the
/// multiply-shift domain reduction) are composed from `_mm256_mul_epu32`
/// 32×32→64 partial products: `lo·lo + ((lo·hi + hi·lo) << 32)` — exactly
/// the low 64 bits of the full product, i.e. exactly `wrapping_mul`. Every
/// lane therefore computes bit-for-bit the scalar `mix64`/reduction, the
/// `(h == y)` outcome accumulates as a masked `u64` add
/// (`acc - cmpeq-mask`), and the final horizontal fold is a sum of exact
/// `u64` lane counts — commutative, so lane order cannot change the total.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// Low 64 bits of a 64×64-bit lane multiply (`wrapping_mul` per lane).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64_lo(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
            _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))
    }

    /// Four-lane `mix64` with the multiplier/increment constants already
    /// broadcast.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mix64_x4(mut x: __m256i, inc: __m256i, m1: __m256i, m2: __m256i) -> __m256i {
        x = _mm256_add_epi64(x, inc);
        x = mul64_lo(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), m1);
        x = mul64_lo(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), m2);
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 31))
    }

    /// # Safety
    ///
    /// The caller must have verified AVX2 support on the running CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn support_count_premixed(pairs: &[(u64, u64)], mv: u64, domain: u64) -> u64 {
        let vmv = _mm256_set1_epi64x(mv as i64);
        let inc = _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15_u64 as i64);
        let m1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let m2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
        let dom = _mm256_set1_epi64x(domain as i64);
        let mut acc = _mm256_setzero_si256();
        let mut quads = pairs.chunks_exact(4);
        for q in quads.by_ref() {
            // Field-indexed gathers keep the load layout-independent of
            // the tuple's memory representation; LLVM lowers consecutive
            // pairs to vector loads + unpacks under this target feature.
            let seeds =
                _mm256_set_epi64x(q[3].0 as i64, q[2].0 as i64, q[1].0 as i64, q[0].0 as i64);
            let ys = _mm256_set_epi64x(q[3].1 as i64, q[2].1 as i64, q[1].1 as i64, q[0].1 as i64);
            let h = mix64_x4(_mm256_xor_si256(seeds, vmv), inc, m1, m2);
            // reduce_to_domain: ((h >> 32) wrapping_mul domain) >> 32. The
            // shifted hash has zero high bits, so mul64_lo is the exact
            // wrapping product for any 64-bit domain.
            let r = _mm256_srli_epi64(mul64_lo(_mm256_srli_epi64(h, 32), dom), 32);
            // Matching lanes compare to all-ones (-1): subtracting the mask
            // adds exactly 1 per match.
            acc = _mm256_sub_epi64(acc, _mm256_cmpeq_epi64(r, ys));
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for &(seed, y) in quads.remainder() {
            total += u64::from(super::reduce_to_domain(super::mix64(seed ^ mv), domain) == y);
        }
        total
    }

    /// SoA twin of [`support_count_premixed`]: lanes fill with straight
    /// 256-bit loads from the parallel slices — no per-field gathers.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support on the running CPU, and
    /// `seeds`/`ys` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn support_count_premixed_soa(
        seeds: &[u64],
        ys: &[u64],
        mv: u64,
        domain: u64,
    ) -> u64 {
        let vmv = _mm256_set1_epi64x(mv as i64);
        let inc = _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15_u64 as i64);
        let m1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let m2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
        let dom = _mm256_set1_epi64x(domain as i64);
        let mut acc = _mm256_setzero_si256();
        let n = seeds.len().min(ys.len());
        let quads = n / 4 * 4;
        let mut i = 0;
        while i < quads {
            // SAFETY: i + 4 <= n bounds both 32-byte loads.
            let s = unsafe { _mm256_loadu_si256(seeds.as_ptr().add(i).cast()) };
            let y = unsafe { _mm256_loadu_si256(ys.as_ptr().add(i).cast()) };
            let h = mix64_x4(_mm256_xor_si256(s, vmv), inc, m1, m2);
            let r = _mm256_srli_epi64(mul64_lo(_mm256_srli_epi64(h, 32), dom), 32);
            acc = _mm256_sub_epi64(acc, _mm256_cmpeq_epi64(r, y));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), acc);
        let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for (&seed, &y) in seeds[quads..n].iter().zip(&ys[quads..n]) {
            total += u64::from(super::reduce_to_domain(super::mix64(seed ^ mv), domain) == y);
        }
        total
    }
}

/// Explicit AVX-512 support kernel: 8 independent mix chains per 512-bit
/// vector of `u64` lanes.
///
/// Unlike AVX2, AVX-512DQ has a native low-64-bit lane multiply
/// (`_mm512_mullo_epi64` = `wrapping_mul` per lane), so every `mix64`
/// multiply and the multiply-shift domain reduction are single
/// instructions — each lane computes bit-for-bit the scalar
/// `mix64`/reduction. Matches come back as a `__mmask8` whose popcount
/// adds exact match counts; the fold is commutative `u64` addition, so
/// lane order cannot change the total.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// Eight-lane `mix64` with the multiplier/increment constants already
    /// broadcast.
    #[inline]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn mix64_x8(mut x: __m512i, inc: __m512i, m1: __m512i, m2: __m512i) -> __m512i {
        x = _mm512_add_epi64(x, inc);
        x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), m1);
        x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), m2);
        _mm512_xor_si512(x, _mm512_srli_epi64(x, 31))
    }

    /// # Safety
    ///
    /// The caller must have verified AVX-512F and AVX-512DQ support on the
    /// running CPU.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn support_count_premixed(pairs: &[(u64, u64)], mv: u64, domain: u64) -> u64 {
        let vmv = _mm512_set1_epi64(mv as i64);
        let inc = _mm512_set1_epi64(0x9E37_79B9_7F4A_7C15_u64 as i64);
        let m1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let m2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EB_u64 as i64);
        let dom = _mm512_set1_epi64(domain as i64);
        let mut total = 0u64;
        let mut octets = pairs.chunks_exact(8);
        for q in octets.by_ref() {
            // Field-indexed gathers keep the load layout-independent of
            // the tuple's memory representation (same scheme as the AVX2
            // path); the arguments run high lane to low.
            let seeds = _mm512_set_epi64(
                q[7].0 as i64,
                q[6].0 as i64,
                q[5].0 as i64,
                q[4].0 as i64,
                q[3].0 as i64,
                q[2].0 as i64,
                q[1].0 as i64,
                q[0].0 as i64,
            );
            let ys = _mm512_set_epi64(
                q[7].1 as i64,
                q[6].1 as i64,
                q[5].1 as i64,
                q[4].1 as i64,
                q[3].1 as i64,
                q[2].1 as i64,
                q[1].1 as i64,
                q[0].1 as i64,
            );
            let h = mix64_x8(_mm512_xor_si512(seeds, vmv), inc, m1, m2);
            // reduce_to_domain: ((h >> 32) wrapping_mul domain) >> 32 —
            // mullo is exactly the wrapping product.
            let r = _mm512_srli_epi64(_mm512_mullo_epi64(_mm512_srli_epi64(h, 32), dom), 32);
            total += u64::from(_mm512_cmpeq_epi64_mask(r, ys).count_ones());
        }
        for &(seed, y) in octets.remainder() {
            total += u64::from(super::reduce_to_domain(super::mix64(seed ^ mv), domain) == y);
        }
        total
    }

    /// SoA twin of [`support_count_premixed`]: lanes fill with straight
    /// 512-bit loads from the parallel slices — no per-field gathers.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX-512F and AVX-512DQ support on the
    /// running CPU, and `seeds`/`ys` must have equal lengths.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn support_count_premixed_soa(
        seeds: &[u64],
        ys: &[u64],
        mv: u64,
        domain: u64,
    ) -> u64 {
        let vmv = _mm512_set1_epi64(mv as i64);
        let inc = _mm512_set1_epi64(0x9E37_79B9_7F4A_7C15_u64 as i64);
        let m1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let m2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EB_u64 as i64);
        let dom = _mm512_set1_epi64(domain as i64);
        let mut total = 0u64;
        let n = seeds.len().min(ys.len());
        let octets = n / 8 * 8;
        let mut i = 0;
        while i < octets {
            // SAFETY: i + 8 <= n bounds both 64-byte loads.
            let s = unsafe { _mm512_loadu_si512(seeds.as_ptr().add(i).cast()) };
            let y = unsafe { _mm512_loadu_si512(ys.as_ptr().add(i).cast()) };
            let h = mix64_x8(_mm512_xor_si512(s, vmv), inc, m1, m2);
            let r = _mm512_srli_epi64(_mm512_mullo_epi64(_mm512_srli_epi64(h, 32), dom), 32);
            total += u64::from(_mm512_cmpeq_epi64_mask(r, y).count_ones());
            i += 8;
        }
        for (&seed, &y) in seeds[octets..n].iter().zip(&ys[octets..n]) {
            total += u64::from(super::reduce_to_domain(super::mix64(seed ^ mv), domain) == y);
        }
        total
    }
}

/// A member of the OLH hash family: hashes `[c] -> [c']` under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededHash {
    seed: u64,
    domain: u64,
}

impl SeededHash {
    /// Creates the hash function with the given seed and output domain `c'`.
    #[inline]
    pub fn new(seed: u64, domain: usize) -> Self {
        assert!(
            domain >= 2,
            "hash output domain must have at least 2 values"
        );
        Self {
            seed,
            domain: domain as u64,
        }
    }

    /// The per-user seed identifying this family member.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The output domain size `c'`.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain as usize
    }

    /// Hashes `value` into `0..c'`.
    #[inline(always)]
    pub fn hash(&self, value: usize) -> usize {
        hash_to_domain(self.seed, value as u64, self.domain) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_sample() {
        // A bijection cannot collide; sample a few million inputs.
        let mut seen = std::collections::HashSet::with_capacity(1 << 16);
        for i in 0..(1u64 << 16) {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_stays_in_domain() {
        for domain in [2u64, 3, 7, 16, 100] {
            for v in 0..1000u64 {
                let h = hash_to_domain(12345, v, domain);
                assert!(h < domain);
            }
        }
    }

    #[test]
    fn hash_is_deterministic_per_seed() {
        let h1 = SeededHash::new(42, 17);
        let h2 = SeededHash::new(42, 17);
        let h3 = SeededHash::new(43, 17);
        let mut differs = false;
        for v in 0..100 {
            assert_eq!(h1.hash(v), h2.hash(v));
            differs |= h1.hash(v) != h3.hash(v);
        }
        assert!(differs, "different seeds must give different functions");
    }

    #[test]
    fn hash_is_roughly_uniform() {
        // Chi-square style sanity check: hashing 0..n under one seed should
        // fill c' buckets roughly evenly.
        let domain = 8usize;
        let n = 80_000usize;
        let mut counts = vec![0usize; domain];
        let h = SeededHash::new(7, domain);
        for v in 0..n {
            counts[h.hash(v)] += 1;
        }
        let expected = n as f64 / domain as f64;
        for &cnt in &counts {
            let rel = (cnt as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "bucket deviates {rel} from uniform");
        }
    }

    #[test]
    fn support_count_matches_scalar_hash_exactly() {
        // Every unroll phase (remainders 0..3) against the scalar path.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 64, 65, 66, 67] {
            let pairs: Vec<(u64, u64)> = (0..n as u64)
                .map(|i| (mix64(i), mix64(i ^ 0xBEEF) % 5))
                .collect();
            for domain in [2u64, 3, 4, 8] {
                for value in 0..16u64 {
                    let manual = pairs
                        .iter()
                        .filter(|&&(s, y)| hash_to_domain(s, value, domain) == y)
                        .count() as u64;
                    assert_eq!(
                        support_count(&pairs, value, domain),
                        manual,
                        "n={n} domain={domain} value={value}"
                    );
                }
            }
        }
    }

    #[test]
    fn premix_composes_with_hash() {
        // hash_to_domain is exactly mix64(seed ^ premix) reduced; the batch
        // kernel relies on this decomposition.
        for seed in [0u64, 1, 42, u64::MAX] {
            for value in 0..32u64 {
                let direct = hash_to_domain(seed, value, 7);
                let via_premix = ((mix64(seed ^ premix_value(value)) >> 32).wrapping_mul(7)) >> 32;
                assert_eq!(direct, via_premix);
            }
        }
    }

    #[test]
    fn pairwise_collision_rate_is_near_one_over_domain() {
        // For OLH's unbiasedness the family must behave like a universal
        // family: Pr_s[H_s(v) = H_s(w)] ~ 1/c' for v != w.
        let domain = 8usize;
        let trials = 40_000u64;
        let (v, w) = (3usize, 11usize);
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = SeededHash::new(mix64(seed), domain);
            if h.hash(v) == h.hash(w) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expected = 1.0 / domain as f64;
        assert!(
            (rate - expected).abs() < 0.01,
            "collision rate {rate} far from {expected}"
        );
    }
}
