//! Random variates not provided by the `rand` crate.
//!
//! The fast oracle simulation path (see `privmdr-oracles`) replaces per-user
//! perturbation with direct sampling of aggregate counts, which requires
//! binomial and multinomial sampling at scale. `rand` ships only uniform
//! generators, and `rand_distr` is not on the approved dependency list, so we
//! implement the classical samplers here:
//!
//! * [`binomial`] — exact Bernoulli loop for small `n`, BINV inversion for
//!   small mean, normal approximation (with continuity correction) otherwise.
//! * [`multinomial`] — sequential conditional binomials.
//! * [`standard_normal`] — Box–Muller transform.
//! * [`standard_exponential`] — inversion.

use rand::Rng;

/// Threshold below which a plain Bernoulli loop is cheapest.
const SMALL_N: u64 = 64;
/// Mean threshold separating BINV inversion from the normal approximation.
const BINV_MAX_MEAN: f64 = 30.0;

/// Draws a standard normal variate via the Box–Muller transform.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: avoids ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a standard (rate 1) exponential variate via inversion.
#[inline]
pub fn standard_exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln()
}

/// Draws from `Binomial(n, p)`.
///
/// The sampler is exact for `n <= 64` and for means below 30 (BINV
/// inversion); larger cases use the normal approximation with continuity
/// correction, which at variance >= ~15 is accurate to far below the LDP
/// noise floor this crate simulates.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Work on the smaller tail for numerical stability.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    if n <= SMALL_N {
        let mut k = 0;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                k += 1;
            }
        }
        return k;
    }
    let mean = n as f64 * p;
    if mean <= BINV_MAX_MEAN {
        binv(rng, n, p)
    } else {
        let sd = (mean * (1.0 - p)).sqrt();
        let x = mean + sd * standard_normal(rng);
        // Continuity correction + clamp to the support.
        (x + 0.5).floor().clamp(0.0, n as f64) as u64
    }
}

/// BINV inversion sampler (Kachitvichyanukul & Schmeiser 1988), valid for
/// small means where the CDF walk terminates quickly.
fn binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    // (1-p)^n in log space: underflows only for means far above BINV_MAX_MEAN.
    let mut r = (n as f64 * q.ln()).exp();
    if r <= 0.0 {
        // Defensive fallback; unreachable for mean <= 30.
        let mean = n as f64 * p;
        let sd = (mean * q).sqrt();
        let x = mean + sd * standard_normal(rng);
        return (x + 0.5).floor().clamp(0.0, n as f64) as u64;
    }
    let mut u: f64 = rng.random::<f64>();
    let mut k = 0u64;
    while u > r {
        u -= r;
        k += 1;
        if k > n {
            return n;
        }
        r *= a / k as f64 - s;
    }
    k
}

/// Draws from `Multinomial(n, probs)` via sequential conditional binomials.
///
/// `probs` need not be normalized; negative entries are treated as zero.
pub fn multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    let mut out = vec![0u64; probs.len()];
    let mut remaining_mass: f64 = probs.iter().map(|&p| p.max(0.0)).sum();
    let mut remaining_n = n;
    for (i, &p) in probs.iter().enumerate() {
        if remaining_n == 0 {
            break;
        }
        let p = p.max(0.0);
        if remaining_mass <= 0.0 {
            break;
        }
        let cond = (p / remaining_mass).min(1.0);
        let draw = if i + 1 == probs.len() {
            remaining_n
        } else {
            binomial(rng, remaining_n, cond)
        };
        out[i] = draw;
        remaining_n -= draw;
        remaining_mass -= p;
    }
    // Any residual (from zero-mass tails) is dropped; callers pass
    // fully-normalized vectors in practice.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| standard_exponential(&mut rng))
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(binomial(&mut rng, 100, -0.1), 0);
        assert_eq!(binomial(&mut rng, 100, 1.5), 100);
    }

    #[test]
    fn binomial_moments_across_regimes() {
        // Exercises all three code paths: small n, BINV, normal approx.
        let cases = [
            (50u64, 0.3f64),      // Bernoulli loop
            (10_000, 0.001),      // BINV (mean 10)
            (10_000, 0.25),       // normal approx (mean 2500)
            (1_000_000, 0.00002), // BINV (mean 20)
            (1_000_000, 0.5),     // normal approx, p at the symmetry point
            (500, 0.9),           // reflected tail
        ];
        for (case_idx, &(n, p)) in cases.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(100 + case_idx as u64);
            let reps = 30_000;
            let xs: Vec<f64> = (0..reps).map(|_| binomial(&mut rng, n, p) as f64).collect();
            let (mean, var) = moments(&xs);
            let want_mean = n as f64 * p;
            let want_var = n as f64 * p * (1.0 - p);
            let mean_tol = 4.0 * (want_var / reps as f64).sqrt() + 1e-9;
            assert!(
                (mean - want_mean).abs() < mean_tol.max(want_mean * 0.01),
                "case {case_idx}: mean {mean} vs {want_mean}"
            );
            assert!(
                (var - want_var).abs() < want_var * 0.1 + 1.0,
                "case {case_idx}: var {var} vs {want_var}"
            );
        }
    }

    #[test]
    fn binomial_stays_in_support() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = binomial(&mut rng, 37, 0.2);
            assert!(k <= 37);
        }
    }

    #[test]
    fn multinomial_conserves_total() {
        let mut rng = StdRng::seed_from_u64(5);
        let probs = [0.1, 0.4, 0.2, 0.3];
        for _ in 0..100 {
            let counts = multinomial(&mut rng, 10_000, &probs);
            assert_eq!(counts.iter().sum::<u64>(), 10_000);
        }
    }

    #[test]
    fn multinomial_matches_marginals() {
        let mut rng = StdRng::seed_from_u64(6);
        let probs = [0.05, 0.55, 0.4];
        let reps = 3000;
        let n = 1000u64;
        let mut sums = [0u64; 3];
        for _ in 0..reps {
            let counts = multinomial(&mut rng, n, &probs);
            for (s, c) in sums.iter_mut().zip(&counts) {
                *s += c;
            }
        }
        for (i, &s) in sums.iter().enumerate() {
            let got = s as f64 / (reps as f64 * n as f64);
            assert!(
                (got - probs[i]).abs() < 0.005,
                "component {i}: {got} vs {}",
                probs[i]
            );
        }
    }

    #[test]
    fn multinomial_handles_zero_and_negative_mass() {
        let mut rng = StdRng::seed_from_u64(7);
        let counts = multinomial(&mut rng, 100, &[0.0, -1.0, 1.0]);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 100);
    }
}
