//! Bit-identity property suite for the lane-parallel OLH support kernel.
//!
//! The production kernel (`support_count_lanes` and its SoA twin
//! `support_count_lanes_soa`) dispatches at runtime to an explicit AVX-512
//! or AVX2 path or a portable 8-chain lane kernel. Every path must produce
//! *exactly* the scalar reference's count — same `mix64`, same
//! multiply-shift reduction, outcomes folded with exact `u64` adds — for
//! any batch length (every lane/unroll remainder, including the empty and
//! single-pair batches), any domain, and any value. These properties are
//! what lets the collector swap kernels without perturbing a single
//! estimate bit.

use privmdr_util::hash::{
    kernel_backend, support_count, support_count_lanes, support_count_lanes_soa,
    support_count_portable, KernelBackend, SUPPORT_LANES,
};
use privmdr_util::mix64;
use proptest::prelude::*;

/// A pair stream with realistic structure: seeds well-mixed, `y` values
/// concentrated in the hash range so matches actually occur.
fn pairs_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((any::<u64>(), 0u64..32), 0..max_len)
}

/// Splits an AoS pair slice into the kernel's SoA form.
fn soa(pairs: &[(u64, u64)]) -> (Vec<u64>, Vec<u64>) {
    pairs.iter().copied().unzip()
}

proptest! {
    /// Lane kernel ≡ scalar reference, whatever backend dispatch picked,
    /// in both the AoS and SoA forms.
    #[test]
    fn lanes_match_scalar(
        pairs in pairs_strategy(300),
        value in any::<u64>(),
        domain in 1u64..1_000_000,
    ) {
        let want = support_count(&pairs, value, domain);
        prop_assert_eq!(support_count_lanes(&pairs, value, domain), want);
        let (seeds, ys) = soa(&pairs);
        prop_assert_eq!(support_count_lanes_soa(&seeds, &ys, value, domain), want);
    }

    /// Portable lane kernel ≡ scalar reference, even on machines where
    /// dispatch would pick a SIMD path.
    #[test]
    fn portable_matches_scalar(
        pairs in pairs_strategy(300),
        value in any::<u64>(),
        domain in 1u64..1_000_000,
    ) {
        prop_assert_eq!(
            support_count_portable(&pairs, value, domain),
            support_count(&pairs, value, domain)
        );
    }

    /// Explicit AVX2 kernel ≡ scalar reference on CPUs that have it.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar(
        pairs in pairs_strategy(300),
        value in any::<u64>(),
        domain in 1u64..1_000_000,
    ) {
        if let Some(got) = privmdr_util::hash::support_count_avx2(&pairs, value, domain) {
            prop_assert_eq!(got, support_count(&pairs, value, domain));
        }
    }

    /// Explicit AVX-512 kernel ≡ scalar reference on CPUs that have it.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_matches_scalar(
        pairs in pairs_strategy(300),
        value in any::<u64>(),
        domain in 1u64..1_000_000,
    ) {
        if let Some(got) = privmdr_util::hash::support_count_avx512(&pairs, value, domain) {
            prop_assert_eq!(got, support_count(&pairs, value, domain));
        }
    }

    /// Huge domains exercise the full 64-bit multiply-shift reduction (the
    /// AVX2 path composes it from 32x32 partial products, AVX-512 uses the
    /// native lane multiply — both must stay exact out to the top bit).
    #[test]
    fn lanes_match_scalar_on_wide_domains(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..100),
        value in any::<u64>(),
        domain in 1u64..=u64::MAX,
    ) {
        let want = support_count(&pairs, value, domain);
        prop_assert_eq!(support_count_lanes(&pairs, value, domain), want);
        prop_assert_eq!(support_count_portable(&pairs, value, domain), want);
        let (seeds, ys) = soa(&pairs);
        prop_assert_eq!(support_count_lanes_soa(&seeds, &ys, value, domain), want);
    }
}

/// Every remainder class of the 8-wide lane kernels and the ×4 SIMD
/// unrolls, swept exhaustively: lengths 0..=3·SUPPORT_LANES cover all
/// `len % 8` and `len % 4` residues several times over, including the
/// empty and single-pair batches.
#[test]
fn every_lane_remainder_is_bit_identical() {
    let pairs: Vec<(u64, u64)> = (0..(3 * SUPPORT_LANES) as u64)
        .map(|i| (mix64(i), mix64(i ^ 0xABCD) % 4))
        .collect();
    for len in 0..=pairs.len() {
        let (seeds, ys) = soa(&pairs[..len]);
        for domain in [1u64, 2, 3, 7, 256, u64::MAX] {
            for value in 0..6u64 {
                let want = support_count(&pairs[..len], value, domain);
                assert_eq!(
                    support_count_lanes(&pairs[..len], value, domain),
                    want,
                    "lanes len={len} domain={domain} value={value}"
                );
                assert_eq!(
                    support_count_lanes_soa(&seeds, &ys, value, domain),
                    want,
                    "soa len={len} domain={domain} value={value}"
                );
                assert_eq!(
                    support_count_portable(&pairs[..len], value, domain),
                    want,
                    "portable len={len} domain={domain} value={value}"
                );
                #[cfg(target_arch = "x86_64")]
                {
                    if let Some(got) =
                        privmdr_util::hash::support_count_avx2(&pairs[..len], value, domain)
                    {
                        assert_eq!(got, want, "avx2 len={len} domain={domain} value={value}");
                    }
                    if let Some(got) =
                        privmdr_util::hash::support_count_avx512(&pairs[..len], value, domain)
                    {
                        assert_eq!(got, want, "avx512 len={len} domain={domain} value={value}");
                    }
                }
            }
        }
    }
}

/// Dispatch is stable (one backend per process) and self-consistent: the
/// backend the selector reports is reachable and its name round-trips.
#[test]
fn backend_selection_is_stable_and_named() {
    let first = kernel_backend();
    assert_eq!(kernel_backend(), first);
    match first {
        KernelBackend::Avx512 => assert_eq!(first.name(), "avx512"),
        KernelBackend::Avx2 => assert_eq!(first.name(), "avx2"),
        KernelBackend::Portable => assert_eq!(first.name(), "portable"),
    }
    #[cfg(target_arch = "x86_64")]
    {
        // If dispatch claims a SIMD tier, the explicit path must actually
        // run (and the tiers below it must too — AVX-512 implies AVX2).
        if first == KernelBackend::Avx512 {
            assert!(privmdr_util::hash::support_count_avx512(&[(1, 0)], 2, 3).is_some());
            assert!(privmdr_util::hash::support_count_avx2(&[(1, 0)], 2, 3).is_some());
        }
        if first == KernelBackend::Avx2 {
            assert!(privmdr_util::hash::support_count_avx2(&[(1, 0)], 2, 3).is_some());
        }
    }
}
