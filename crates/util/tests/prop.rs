//! Property tests for the utility substrates.

use privmdr_util::hash::{hash_to_domain, mix64, SeededHash};
use privmdr_util::linalg::Matrix;
use privmdr_util::pow2::{closest_pow2, is_pow2};
use privmdr_util::rng::derive_seed;
use privmdr_util::sampling::{binomial, multinomial};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// mix64 is injective on arbitrary pairs (bijectivity implies this).
    #[test]
    fn mix64_injective(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(mix64(a) == mix64(b), a == b);
    }

    /// Hash outputs always land in the requested domain.
    #[test]
    fn hash_in_domain(seed in any::<u64>(), v in any::<u64>(), domain in 1u64..10_000) {
        prop_assert!(hash_to_domain(seed, v, domain) < domain);
    }

    /// SeededHash is a pure function of (seed, value).
    #[test]
    fn seeded_hash_is_pure(seed in any::<u64>(), v in 0usize..100_000, domain in 2usize..512) {
        let h = SeededHash::new(seed, domain);
        prop_assert_eq!(h.hash(v), SeededHash::new(seed, domain).hash(v));
        prop_assert!(h.hash(v) < domain);
    }

    /// closest_pow2 returns a power of two with the minimal linear distance.
    #[test]
    fn closest_pow2_is_optimal(x in 1.0f64..1e9) {
        let p = closest_pow2(x);
        prop_assert!(is_pow2(p));
        let dist = (x - p as f64).abs();
        for candidate in [p / 2, p * 2] {
            if candidate >= 1 {
                // Strictly better alternatives must not exist (ties go down).
                let cd = (x - candidate as f64).abs();
                prop_assert!(dist <= cd + 1e-9, "x={} p={} cand={}", x, p, candidate);
            }
        }
    }

    /// Binomial samples stay in the support for any parameters.
    #[test]
    fn binomial_in_support(n in 0u64..100_000, p in -0.5f64..1.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    /// Multinomial conserves the total count for non-degenerate weights.
    #[test]
    fn multinomial_conserves(
        n in 0u64..10_000,
        probs in prop::collection::vec(0.0f64..1.0, 1..10),
        seed in any::<u64>(),
    ) {
        prop_assume!(probs.iter().sum::<f64>() > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = multinomial(&mut rng, n, &probs);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
    }

    /// Seed derivation separates sibling streams.
    #[test]
    fn derive_seed_separates(parent in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(parent, &[a]), derive_seed(parent, &[b]));
    }

    /// Cholesky reconstructs any valid equicorrelation matrix.
    #[test]
    fn cholesky_reconstructs(d in 2usize..8, rho_raw in 0.0f64..0.95) {
        let m = Matrix::equicorrelation(d, rho_raw);
        let l = m.cholesky().expect("PD for rho in [0, 0.95)");
        for i in 0..d {
            for j in 0..d {
                let mut acc = 0.0;
                for k in 0..d {
                    acc += l[(i, k)] * l[(j, k)];
                }
                prop_assert!((acc - m[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
