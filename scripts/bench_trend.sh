#!/usr/bin/env bash
# Appends one `privmdr ingest` and one `privmdr serve` benchmark line to
# the repo-root perf-trajectory files BENCH_ingest.json / BENCH_serve.json
# (JSON Lines: one machine-readable record per run, oldest first), so
# throughput can be tracked across PRs. Each record carries a "cpus" field
# (the parallelism available to the run) next to "shards", so entries from
# a 1-core box are distinguishable from real multicore runs when reading
# the trend.
#
# Usage: scripts/bench_trend.sh
#   Tunables via environment (defaults match the README headline figures):
#     N=1000000 D=3 C=64 EPS=1.0 SEED=1 QUERIES=10000
#     SHARDS=        (empty = all available cores)
#     ORACLE=olh     (olh|grr|auto|wheel|sw)   APPROACH=hdg (hdg|tdg|msw)
#     SESSIONS=2     (served tenants) CACHE_CAP=16384 (served LRU capacity)
#     BIN=           (prebuilt privmdr binary; default: cargo-built release)
#
# Five records are appended per run: an ingest line to BENCH_ingest.json,
# a serve (uncached single-tenant) plus a served (multi-tenant daemon,
# warm-cache queries_per_sec with cold/uncached figures alongside) line to
# BENCH_serve.json, and two fixed wide-mechanism rows — a Wheel ingest
# record and an MSW (SW-substrate) serve record — so the wide paths'
# throughput is tracked alongside the default stack.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-1000000}
D=${D:-3}
C=${C:-64}
EPS=${EPS:-1.0}
SEED=${SEED:-1}
QUERIES=${QUERIES:-10000}
SHARDS=${SHARDS:-}
ORACLE=${ORACLE:-olh}
APPROACH=${APPROACH:-hdg}
SESSIONS=${SESSIONS:-2}
CACHE_CAP=${CACHE_CAP:-16384}

if [ -z "${BIN:-}" ]; then
    cargo build --release -p privmdr-cli >&2
    BIN=target/release/privmdr
fi

common=(--n "$N" --d "$D" --c "$C" --epsilon "$EPS" --seed "$SEED"
        --oracle "$ORACLE" --approach "$APPROACH" --json)
if [ -n "$SHARDS" ]; then
    common+=(--shards "$SHARDS")
fi

"$BIN" ingest "${common[@]}" | tee -a BENCH_ingest.json
"$BIN" serve "${common[@]}" --queries "$QUERIES" | tee -a BENCH_serve.json
"$BIN" served "${common[@]}" --sessions "$SESSIONS" --cache-cap "$CACHE_CAP" \
    --queries "$QUERIES" | tee -a BENCH_serve.json

# Wide-mechanism trend rows, pinned to wheel/hdg and sw/msw regardless of
# ORACLE/APPROACH above.
wide=(--n "$N" --d "$D" --c "$C" --epsilon "$EPS" --seed "$SEED" --json)
if [ -n "$SHARDS" ]; then
    wide+=(--shards "$SHARDS")
fi
"$BIN" ingest "${wide[@]}" --oracle wheel --approach hdg | tee -a BENCH_ingest.json
"$BIN" serve "${wide[@]}" --oracle sw --approach msw --queries "$QUERIES" \
    | tee -a BENCH_serve.json
