#!/usr/bin/env bash
# Appends one `privmdr ingest` and one `privmdr serve` benchmark line to
# the repo-root perf-trajectory files BENCH_ingest.json / BENCH_serve.json
# (JSON Lines: one machine-readable record per run, oldest first), so
# throughput can be tracked across PRs. Each record carries a "cpus" field
# (the parallelism available to the run) next to "shards", so entries from
# a 1-core box are distinguishable from real multicore runs when reading
# the trend, and a "gated" field: true when a same-shape baseline existed
# and the new record is within the perf-gate threshold of it, false when
# the record is the first of its shape or would have tripped
# scripts/bench_gate.sh. The trend records reality either way — the gate
# script is what fails CI.
#
# Usage: scripts/bench_trend.sh
#   Tunables via environment (defaults match the README headline figures):
#     N=1000000 D=3 C=64 EPS=1.0 SEED=1 QUERIES=10000
#     SHARDS=        (empty = all available cores)
#     ORACLE=olh     (olh|grr|auto|wheel|sw)   APPROACH=hdg (hdg|tdg|msw)
#     SESSIONS=2     (served tenants) CACHE_CAP=16384 (served LRU capacity)
#     REPEAT=3       (best-of-K timing for the ingest/serve records)
#     GATE_THRESHOLD=0.10 (relative drop that flips "gated" to false)
#     BIN=           (prebuilt privmdr binary; default: cargo-built release)
#
# Six records are appended per run: an ingest line to BENCH_ingest.json,
# a serve (uncached single-tenant) plus a served (multi-tenant daemon,
# warm-cache queries_per_sec with cold/uncached figures alongside) line to
# BENCH_serve.json, a λ=3-only serve record (every query pays the
# Weighted-Update estimation loop — the lane-parallel estimator's
# workload, carrying a "lambdas":"3" shape field), and two fixed
# wide-mechanism rows — a Wheel ingest record and an MSW (SW-substrate)
# serve record — so the wide paths' throughput is tracked alongside the
# default stack.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

N=${N:-1000000}
D=${D:-3}
C=${C:-64}
EPS=${EPS:-1.0}
SEED=${SEED:-1}
QUERIES=${QUERIES:-10000}
SHARDS=${SHARDS:-}
ORACLE=${ORACLE:-olh}
APPROACH=${APPROACH:-hdg}
SESSIONS=${SESSIONS:-2}
CACHE_CAP=${CACHE_CAP:-16384}
REPEAT=${REPEAT:-3}
GATE_THRESHOLD=${GATE_THRESHOLD:-0.10}

if [ "$(nproc 2>/dev/null || echo 1)" -le 1 ]; then
    cat >&2 <<'EOF'
################################################################
# WARNING: only 1 CPU is available to this run.                #
# Sharded throughput cannot scale here; the records below are  #
# appended with "cpus":1 and must not be read as multicore     #
# figures. They gate only against other cpus:1 records.        #
################################################################
EOF
fi

if [ -z "${BIN:-}" ]; then
    cargo build --release -p privmdr-cli >&2
    BIN=target/release/privmdr
fi

# Reads one record from stdin, annotates it with "gated", echoes it, and
# appends it to FILE.
append_gated() { # append_gated FILE METRIC
    local file=$1 metric=$2 line base g=false
    IFS= read -r line
    base=$(last_matching "$file" "$line")
    if [ -n "$base" ] &&
        ! regressed "$(field "$line" "$metric")" "$(field "$base" "$metric")" \
            "$GATE_THRESHOLD"; then
        g=true
    fi
    line="${line%\}},\"gated\":$g}"
    printf '%s\n' "$line" | tee -a "$file"
}

common=(--n "$N" --d "$D" --c "$C" --epsilon "$EPS" --seed "$SEED"
        --oracle "$ORACLE" --approach "$APPROACH" --json)
if [ -n "$SHARDS" ]; then
    common+=(--shards "$SHARDS")
fi

# `--repeat` (best-of-K) only on ingest/serve: `served` has its own
# --repeat with cache-pass semantics.
"$BIN" ingest "${common[@]}" --repeat "$REPEAT" |
    append_gated BENCH_ingest.json reports_per_sec
"$BIN" serve "${common[@]}" --repeat "$REPEAT" --queries "$QUERIES" |
    append_gated BENCH_serve.json queries_per_sec
"$BIN" served "${common[@]}" --sessions "$SESSIONS" --cache-cap "$CACHE_CAP" \
    --queries "$QUERIES" | append_gated BENCH_serve.json queries_per_sec

# Estimator-heavy serve row: λ=3-only, so every query runs Algorithm 2
# through the lane-parallel batch kernel (the ISSUE-10 hot path).
"$BIN" serve "${common[@]}" --repeat "$REPEAT" --queries "$QUERIES" \
    --lambdas "$D" | append_gated BENCH_serve.json queries_per_sec

# Wide-mechanism trend rows, pinned to wheel/hdg and sw/msw regardless of
# ORACLE/APPROACH above.
wide=(--n "$N" --d "$D" --c "$C" --epsilon "$EPS" --seed "$SEED" --json)
if [ -n "$SHARDS" ]; then
    wide+=(--shards "$SHARDS")
fi
"$BIN" ingest "${wide[@]}" --oracle wheel --approach hdg --repeat "$REPEAT" |
    append_gated BENCH_ingest.json reports_per_sec
"$BIN" serve "${wide[@]}" --oracle sw --approach msw --repeat "$REPEAT" \
    --queries "$QUERIES" | append_gated BENCH_serve.json queries_per_sec
