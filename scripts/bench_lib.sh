# Shared helpers for the bench scripts: JSON Lines field extraction,
# record shape keys, and baseline lookup over the BENCH_*.json trend
# files. Sourced by bench_trend.sh and bench_gate.sh — not executable
# on its own. Pure sed/awk so the CI image needs no jq.

field() { # field LINE KEY -> scalar value (string values unquoted)
    printf '%s\n' "$1" |
        sed -n "s/.*\"$2\":\(\"[^\"]*\"\|[0-9.eE+-]*\).*/\1/p" | tr -d '"'
}

# The shape key under which records are comparable. `cpus` is part of
# the shape: a 1-core record must never gate a multicore run or vice
# versa. `lambdas` (the serve workload's query-dimensionality spec) is
# only emitted when non-default, so pre-existing default-mix records
# keep their shape and λ-heavy records form shapes of their own.
shape_of() { # shape_of LINE
    local line=$1 out="" k
    for k in cmd n d c epsilon shards cpus oracle approach lambdas; do
        out="$out|$(field "$line" "$k")"
    done
    printf '%s\n' "$out"
}

last_matching() { # last_matching FILE FRESH_LINE -> baseline line (or empty)
    local file=$1 key line
    [ -f "$file" ] || return 0
    key=$(shape_of "$2")
    tac "$file" | {
        while IFS= read -r line; do
            if [ "$(shape_of "$line")" = "$key" ]; then
                printf '%s\n' "$line"
                break
            fi
        done
    }
}

regressed() { # regressed FRESH BASE THRESHOLD -> exit 0 iff fresh < base*(1-t)
    awk -v f="$1" -v b="$2" -v t="$3" 'BEGIN { exit !(f < b * (1 - t)) }'
}
