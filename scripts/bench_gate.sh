#!/usr/bin/env bash
# CI perf gate: runs one fresh `privmdr ingest --json` plus two fresh
# `privmdr serve --json` records — the default mixed-λ workload and a
# λ=D-only estimator-heavy one — (each best-of-REPEAT, so a single
# scheduler hiccup cannot fail the build) and compares each against the
# most recent record of the same shape — (cmd, n, d, c, epsilon, shards,
# cpus, oracle, approach, lambdas) — in the trend files
# BENCH_ingest.json / BENCH_serve.json. Exits non-zero if either fresh throughput is more
# than THRESHOLD (default 10%) below its baseline. Shapes with no
# baseline pass with a note; records are only compared here, never
# appended — use scripts/bench_trend.sh to extend the trend files.
#
# Usage: scripts/bench_gate.sh [--selftest]
#   --selftest: doctor a baseline 10x faster than a fresh smoke-scale
#   run and assert the gate trips. Proves the comparison can actually
#   fail CI; exits 0 iff the doctored regression was detected.
#
#   Tunables via environment (defaults match scripts/bench_trend.sh):
#     N=1000000 D=3 C=64 EPS=1.0 SEED=1 QUERIES=10000
#     SHARDS=        (empty = all available cores)
#     ORACLE=olh APPROACH=hdg REPEAT=3 THRESHOLD=0.10
#     INGEST_FILE=BENCH_ingest.json SERVE_FILE=BENCH_serve.json
#     BIN=           (prebuilt privmdr binary; default: cargo-built release)
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-1000000}
D=${D:-3}
C=${C:-64}
EPS=${EPS:-1.0}
SEED=${SEED:-1}
QUERIES=${QUERIES:-10000}
SHARDS=${SHARDS:-}
ORACLE=${ORACLE:-olh}
APPROACH=${APPROACH:-hdg}
REPEAT=${REPEAT:-3}
THRESHOLD=${THRESHOLD:-0.10}
INGEST_FILE=${INGEST_FILE:-BENCH_ingest.json}
SERVE_FILE=${SERVE_FILE:-BENCH_serve.json}

# JSON-line field extraction / shape keys / baseline lookup.
. scripts/bench_lib.sh

# Compares one fresh record against its baseline in FILE on METRIC.
# Returns 1 on a gated regression, 0 otherwise.
gate_one() { # gate_one LABEL FRESH_LINE FILE METRIC
    local label=$1 fresh=$2 file=$3 metric=$4 base fresh_v base_v
    base=$(last_matching "$file" "$fresh")
    if [ -z "$base" ]; then
        echo "perf gate: $label: no same-shape baseline in $file — pass (first record of this shape)"
        return 0
    fi
    fresh_v=$(field "$fresh" "$metric")
    base_v=$(field "$base" "$metric")
    if regressed "$fresh_v" "$base_v" "$THRESHOLD"; then
        echo "perf gate: $label: FAIL — $metric $fresh_v is >$(awk -v t="$THRESHOLD" 'BEGIN{printf "%g", t*100}')% below baseline $base_v" >&2
        echo "  fresh:    $fresh" >&2
        echo "  baseline: $base" >&2
        return 1
    fi
    echo "perf gate: $label: ok — $metric $fresh_v vs baseline $base_v"
}

if [ -z "${BIN:-}" ]; then
    cargo build --release -p privmdr-cli >&2
    BIN=target/release/privmdr
fi

common=(--n "$N" --d "$D" --c "$C" --epsilon "$EPS" --seed "$SEED"
        --oracle "$ORACLE" --approach "$APPROACH" --repeat "$REPEAT" --json)
if [ -n "$SHARDS" ]; then
    common+=(--shards "$SHARDS")
fi

if [ "${1:-}" = "--selftest" ]; then
    # Smoke scale: the self-test proves the comparison trips, not the
    # machine's absolute throughput.
    common=(--n "${SELFTEST_N:-50000}" --d 3 --c 16 --epsilon 1.0 --seed 1
            --oracle "$ORACLE" --approach "$APPROACH" --repeat "$REPEAT" --json)
    fresh=$("$BIN" ingest "${common[@]}")
    rps=$(field "$fresh" reports_per_sec)
    doctored=$(printf '%s\n' "$fresh" |
        sed "s/\"reports_per_sec\":[0-9.eE+-]*/\"reports_per_sec\":$((${rps%%.*} * 10))/")
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT
    printf '%s\n' "$doctored" > "$tmp"
    if gate_one "selftest(ingest)" "$fresh" "$tmp" reports_per_sec; then
        echo "perf gate selftest: FAIL — a 10x-faster doctored baseline did not trip the gate" >&2
        exit 1
    fi
    echo "perf gate selftest: ok — synthetic >10% regression correctly failed"
    exit 0
fi

status=0
fresh_ingest=$("$BIN" ingest "${common[@]}")
gate_one ingest "$fresh_ingest" "$INGEST_FILE" reports_per_sec || status=1
fresh_serve=$("$BIN" serve "${common[@]}" --queries "$QUERIES")
gate_one serve "$fresh_serve" "$SERVE_FILE" queries_per_sec || status=1
# λ=D-only serve: every query pays the Weighted-Update estimation loop,
# gating the lane-parallel batch estimator specifically.
fresh_lambda=$("$BIN" serve "${common[@]}" --queries "$QUERIES" --lambdas "$D")
gate_one "serve(lambdas=$D)" "$fresh_lambda" "$SERVE_FILE" queries_per_sec || status=1
exit "$status"
