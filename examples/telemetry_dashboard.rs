//! Response-time telemetry: the weak-correlation regime.
//!
//! A product team collects per-question answer times (the Bfive scenario)
//! under LDP and wants latency-band dashboards. Correlations between
//! questions are weak, which is MSW's best case — this example shows that
//! HDG stays competitive there while winning decisively once correlations
//! appear (the paper's Fig. 1c/d observation), and sketches the
//! privacy/utility dial a deployment would expose.
//!
//! ```sh
//! cargo run --release --example telemetry_dashboard
//! ```

use privmdr::core::{Hdg, Mechanism, Msw};
use privmdr::data::DatasetSpec;
use privmdr::query::mae;
use privmdr::query::workload::{true_answers, WorkloadBuilder};

fn league(name: &str, spec: DatasetSpec, lambda: usize) {
    let (n, d, c) = (200_000, 5, 64);
    let ds = spec.generate(n, d, c, 5);
    let wl = WorkloadBuilder::new(d, c, 31).random(lambda, 0.5, 80);
    let truths = true_answers(&ds, &wl);
    println!("\n{name} — MAE on 80 random {lambda}-D queries");
    println!("| eps | MSW | HDG |");
    println!("|-----|-----|-----|");
    for eps in [0.2, 0.5, 1.0, 2.0] {
        let msw = Msw::default().fit(&ds, eps, 1).expect("fit");
        let hdg = Hdg::default().fit(&ds, eps, 1).expect("fit");
        println!(
            "| {eps:.1} | {:.5} | {:.5} |",
            mae(&msw.answer_all(&wl), &truths),
            mae(&hdg.answer_all(&wl), &truths),
        );
    }
}

fn main() {
    println!("Telemetry under LDP: weakly vs strongly correlated attributes");

    // Bfive-like: log-normal response times, correlation ~0.1. MSW's
    // independence assumption costs almost nothing here.
    league(
        "weakly correlated (Bfive-like response times)",
        DatasetSpec::Bfive,
        2,
    );

    // Same marginals' heavy tails but strong correlation: the independence
    // assumption now misses all the joint structure.
    league(
        "strongly correlated (Normal, rho = 0.8)",
        DatasetSpec::Normal { rho: 0.8 },
        2,
    );

    println!(
        "\nTakeaway: MSW matches HDG only while attributes are independent; \
         HDG is the safe default because it also captures correlations."
    );
}
