//! Census analytics: the paper's motivating scenario.
//!
//! An analyst wants multi-dimensional range statistics (age × income ×
//! hours-worked) over census microdata without the collector ever seeing a
//! raw record. This example fits every mechanism on the IPUMS-like dataset
//! and prints an accuracy league table across privacy budgets.
//!
//! ```sh
//! cargo run --release --example census_analytics
//! ```

use privmdr::core::{Calm, Hdg, Lhio, Mechanism, Msw, Tdg, Uni};
use privmdr::data::DatasetSpec;
use privmdr::query::workload::{true_answers, WorkloadBuilder};
use privmdr::query::{mae, RangeQuery};

fn main() {
    let (n, d, c) = (200_000, 6, 64);
    let dataset = DatasetSpec::Ipums.generate(n, d, c, 2024);
    println!("IPUMS-like census table: {n} users x {d} attributes, domain 0..{c}\n");

    // A workload of 100 random 3-D range queries, each interval covering
    // half an attribute's domain.
    let workload = WorkloadBuilder::new(d, c, 99).random(3, 0.5, 100);
    let truths = true_answers(&dataset, &workload);

    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Uni),
        Box::new(Msw::default()),
        Box::new(Calm::default()),
        Box::new(Lhio::default()),
        Box::new(Tdg::default()),
        Box::new(Hdg::default()),
    ];

    println!("MAE on 100 random 3-D range queries (lower is better):\n");
    println!("| mechanism | eps=0.5 | eps=1.0 | eps=2.0 |");
    println!("|-----------|---------|---------|---------|");
    for mech in &mechanisms {
        print!("| {:9} |", mech.name());
        for (i, eps) in [0.5, 1.0, 2.0].into_iter().enumerate() {
            let model = mech.fit(&dataset, eps, 10 + i as u64).expect("fit");
            let estimates = model.answer_all(&workload);
            print!(" {:.5} |", mae(&estimates, &truths));
        }
        println!();
    }

    // Zoom in on one business question: what fraction of people aged in the
    // upper half of the domain earn in the lower third?
    let q = RangeQuery::from_triples(&[(0, 32, 63), (1, 0, 20)], c).expect("valid");
    let truth = q.true_answer(&dataset);
    println!("\nSpot check, eps = 1.0: \"{q}\" (truth {truth:.4})");
    for mech in &mechanisms {
        let model = mech.fit(&dataset, 1.0, 77).expect("fit");
        println!("  {:9} -> {:.4}", mech.name(), model.answer(&q));
    }
}
