//! Privacy audit: empirically checking the ε-LDP guarantee.
//!
//! ε-LDP requires that for ANY two inputs v, v′ and any output set R,
//! `Pr[A(v) ∈ R] ≤ e^ε · Pr[A(v′) ∈ R]`. This example plays the attacker:
//! it runs the client-side randomizers of GRR, OLH and Square Wave millions
//! of times on two adversarially different values and measures the worst
//! observed likelihood ratio — which must stay below e^ε (up to sampling
//! noise).
//!
//! ```sh
//! cargo run --release --example privacy_audit
//! ```

use privmdr::oracles::grr::Grr;
use privmdr::oracles::olh::Olh;
use privmdr::oracles::sw::SquareWave;
use privmdr::util::rng::derive_rng;

const TRIALS: usize = 2_000_000;

fn audit(name: &str, eps: f64, histogram: impl Fn(usize) -> Vec<f64>) {
    // Output distributions under the two inputs.
    let h0 = histogram(0);
    let h1 = histogram(1);
    let mut worst: f64 = 0.0;
    for (a, b) in h0.iter().zip(&h1) {
        // Ignore bins too rare to estimate a ratio from.
        if *a * TRIALS as f64 > 50.0 && *b * TRIALS as f64 > 50.0 {
            worst = worst.max(a / b).max(b / a);
        }
    }
    let bound = eps.exp();
    let verdict = if worst <= bound * 1.06 {
        "OK"
    } else {
        "VIOLATION"
    };
    println!(
        "{name:<12} eps={eps:.1}  worst observed ratio {worst:.3}  bound e^eps = {bound:.3}  [{verdict}]"
    );
}

fn main() {
    println!("Empirical ε-LDP audit over {TRIALS} randomized reports per input\n");
    for eps in [0.5, 1.0] {
        // GRR over a domain of 8: outputs are the categories themselves.
        let grr = Grr::new(eps, 8).expect("params");
        audit("GRR", eps, |v| {
            let mut rng = derive_rng(1, &[v as u64, (eps * 10.0) as u64]);
            let mut h = vec![0f64; 8];
            for _ in 0..TRIALS {
                h[grr.perturb(if v == 0 { 2 } else { 6 }, &mut rng)] += 1.0;
            }
            h.iter_mut().for_each(|x| *x /= TRIALS as f64);
            h
        });

        // OLH: the report is (seed, y); the adversary sees both. Audit the
        // distribution of y conditioned on a FIXED hash seed (the worst
        // case, since the seed is input-independent).
        let olh = Olh::new(eps, 64).expect("params");
        audit("OLH", eps, |v| {
            let mut rng = derive_rng(2, &[v as u64, (eps * 10.0) as u64]);
            let mut h = vec![0f64; olh.c_prime()];
            for _ in 0..TRIALS {
                let r = olh.perturb(if v == 0 { 3 } else { 40 }, &mut rng);
                h[r.y as usize] += 1.0;
            }
            h.iter_mut().for_each(|x| *x /= TRIALS as f64);
            h
        });

        // Square Wave: continuous output, binned for the audit.
        let sw = SquareWave::new(eps, 64).expect("params");
        audit("SquareWave", eps, |v| {
            let mut rng = derive_rng(3, &[v as u64, (eps * 10.0) as u64]);
            let bins = 64;
            let mut h = vec![0f64; bins];
            let (lo, width) = (-sw.delta(), (1.0 + 2.0 * sw.delta()) / bins as f64);
            for _ in 0..TRIALS {
                let y = sw.perturb(if v == 0 { 0.2 } else { 0.8 }, &mut rng);
                let b = (((y - lo) / width) as usize).min(bins - 1);
                h[b] += 1.0;
            }
            h.iter_mut().for_each(|x| *x /= TRIALS as f64);
            h
        });
        println!();
    }
    println!(
        "Every ratio stays within e^eps: no output reveals more about one\n\
         input than the privacy budget allows, matching the paper's claim\n\
         that all information flows through eps-LDP frequency oracles."
    );
}
