//! Quickstart: synthesize data, fit HDG under ε-LDP, answer range queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use privmdr::core::{Hdg, Mechanism};
use privmdr::data::DatasetSpec;
use privmdr::query::RangeQuery;

fn main() {
    // 200k users, 4 ordinal attributes over the domain {0, …, 63},
    // pairwise correlation 0.8 (the paper's synthetic Normal dataset).
    let dataset = DatasetSpec::Normal { rho: 0.8 }.generate(200_000, 4, 64, 42);

    // Fit HDG at privacy budget ε = 1. Everything private happens here:
    // users are split into d + (d choose 2) groups, each reports one grid
    // cell through OLH, and the aggregator post-processes the noisy grids.
    let epsilon = 1.0;
    let model = Hdg::default().fit(&dataset, epsilon, 7).expect("fit HDG");

    // A 3-dimensional range query: age in [16, 47] AND income in [0, 31]
    // AND hours in [32, 63] (answered by splitting into 2-D queries and
    // fusing them with Algorithm 2).
    let query =
        RangeQuery::from_triples(&[(0, 16, 47), (1, 0, 31), (2, 32, 63)], 64).expect("valid query");

    let estimate = model.answer(&query);
    let truth = query.true_answer(&dataset);
    println!("query     : {query}");
    println!("estimate  : {estimate:.4}");
    println!("truth     : {truth:.4}");
    println!("abs error : {:.4}", (estimate - truth).abs());

    // The model answers any number of queries without further privacy cost.
    let q2 = RangeQuery::from_triples(&[(2, 0, 15)], 64).expect("valid query");
    println!(
        "\n1-D query {q2}: estimate {:.4}, truth {:.4}",
        model.answer(&q2),
        q2.true_answer(&dataset)
    );
}
