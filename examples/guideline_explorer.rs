//! Guideline explorer: what granularities would HDG pick for your
//! deployment?
//!
//! Reproduces the paper's Table 2 logic for arbitrary parameters:
//!
//! ```sh
//! cargo run --release --example guideline_explorer -- 1000000 6 64
//! #                                                    n      d  c
//! ```

use privmdr::grid::guideline::{choose_granularities, choose_tdg_granularity, GuidelineParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let d: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let c: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let params = GuidelineParams::default();

    println!("HDG granularity guideline (alpha1 = 0.7, alpha2 = 0.03)");
    println!("n = {n}, d = {d}, c = {c}");
    println!(
        "user groups: {} one-dimensional + {} two-dimensional\n",
        d,
        d * (d - 1) / 2
    );
    println!("| eps | HDG (g1, g2) | TDG g2 | users per group |");
    println!("|-----|--------------|--------|-----------------|");
    for i in 1..=10 {
        let eps = 0.2 * i as f64;
        let g = choose_granularities(n, d, eps, c, &params);
        let tdg = choose_tdg_granularity(n, d, eps, c, &params);
        let per_group = n / (d + d * (d - 1) / 2);
        println!("| {eps:.1} | ({}, {}) | {tdg} | ~{per_group} |", g.g1, g.g2);
    }

    println!(
        "\nInterpretation: finer grids (larger g) lower the non-uniformity\n\
         error inside cells but raise the LDP noise per query; the guideline\n\
         balances the two for your (n, d, eps). Granularities are powers of\n\
         two so cells evenly tile the domain."
    );
}
